// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) plus the ablations its text motivates. Each
// experiment returns a Result with the rendered table or figure, the
// paper's qualitative expectation, and derived observations so the
// harness (cmd/pmbench, bench_test.go, EXPERIMENTS.md) can compare shape
// against the paper mechanically.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"powermanna/internal/psim"
	"powermanna/internal/stats"
)

// DefaultSeed seeds the deterministic traffic streams of the stochastic
// experiments. The zero-value Options reproduces the published tables.
const DefaultSeed = 1999

// Options tunes experiment sweep sizes.
type Options struct {
	// Quick shrinks sweeps to seconds for tests and smoke runs; the full
	// sweeps reproduce the paper's plotted ranges.
	Quick bool
	// Seed drives every random traffic stream (the blocking experiment's
	// permutations). Zero means DefaultSeed: results are always a pure
	// function of (experiment, Options) — the determinism contract
	// forbids the global math/rand source.
	Seed int64
	// Engine selects the event engine for campaign-backed experiments
	// (psim.Seq or psim.Par); results are byte-identical either way.
	Engine psim.Kind
}

// rng builds a fresh explicit generator from the configured seed. Each
// call restarts the stream, so two consumers seeded alike see identical
// traffic.
func (o Options) rng() *rand.Rand {
	seed := o.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	return rand.New(rand.NewSource(seed))
}

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment key: "table1", "fig6a", ... "duallink".
	ID string
	// Description says what the experiment measures.
	Description string
	// Expected states the paper's qualitative finding this run should
	// reproduce.
	Expected string
	// Figure holds curve output (nil for tables).
	Figure *stats.Figure
	// Table holds tabular output (nil for figures).
	Table *stats.Table
	// Notes are derived observations (speedups, ratios, crossovers).
	Notes []string
}

// Render produces the experiment's full text block.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n", r.ID, r.Description)
	fmt.Fprintf(&b, "Paper: %s\n\n", r.Expected)
	if r.Table != nil {
		b.WriteString(r.Table.Render())
	}
	if r.Figure != nil {
		b.WriteString(r.Figure.Render())
		b.WriteString(r.Figure.Plot(72, 18))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner produces one experiment.
type Runner func(Options) Result

// registry maps experiment IDs to runners, in presentation order.
var registry = []struct {
	id  string
	fn  Runner
	doc string
}{
	{"table1", Table1, "configuration of the test systems"},
	{"fig5", Fig5Topology, "topology properties of the cluster and the 256-processor system"},
	{"fig6a", Fig6a, "HINT DOUBLE, QUIPS along time"},
	{"fig6b", Fig6b, "HINT INT, QUIPS along time"},
	{"fig7a", Fig7a, "MatMult naive, single processor, MFLOPS along N"},
	{"fig7b", Fig7b, "MatMult transposed, single processor, MFLOPS along N"},
	{"fig8a", Fig8a, "MatMult naive, dual-processor speedup"},
	{"fig8b", Fig8b, "MatMult transposed, dual-processor speedup"},
	{"fig9", Fig9, "one-way latency along message size"},
	{"fig10", Fig10, "message-sending time at saturation (gap)"},
	{"fig11", Fig11, "unidirectional bandwidth"},
	{"fig12", Fig12, "simultaneous bidirectional bandwidth"},
	{"nodescale", NodeScalability, "node scalability 1..6 CPUs (Section 2 claim)"},
	{"blocking", BlockingBehavior, "crossbar hierarchy vs mesh blocking behavior (Section 3 claim)"},
	{"dispatcher", DispatcherAblation, "dispatcher pipelining / out-of-order completion ablation (Section 2)"},
	{"smartni", SmartNI, "CPU-driven interface vs PCI NIC latency budget (Sections 3.3, 6)"},
	{"fifosweep", FIFOSweep, "bidirectional bandwidth vs link-interface FIFO size"},
	{"duallink", DualLink, "single vs dual (duplicated) network links"},
	{"faultsweep", FaultSweep, "duplicated-network degradation under plane-A link cuts (Section 4)"},
}

// IDs lists all experiment keys in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// ByID finds an experiment runner.
func ByID(id string) (Runner, bool) {
	for _, e := range registry {
		if e.id == id {
			return e.fn, true
		}
	}
	return nil, false
}

// All runs every experiment in order.
func All(opt Options) []Result {
	out := make([]Result, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.fn(opt))
	}
	return out
}

// helper: sorted keys of a float map (deterministic notes).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
