package experiments

import "encoding/json"

// jsonResult is the machine-readable form of a Result.
type jsonResult struct {
	ID          string      `json:"id"`
	Description string      `json:"description"`
	Expected    string      `json:"expected"`
	Notes       []string    `json:"notes,omitempty"`
	Table       *jsonTable  `json:"table,omitempty"`
	Figure      *jsonFigure `json:"figure,omitempty"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

type jsonFigure struct {
	Title  string       `json:"title"`
	XLabel string       `json:"xLabel"`
	YLabel string       `json:"yLabel"`
	Series []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// JSON renders the result as indented JSON for machine consumption
// (pmbench -json).
func (r Result) JSON() ([]byte, error) {
	out := jsonResult{
		ID:          r.ID,
		Description: r.Description,
		Expected:    r.Expected,
		Notes:       r.Notes,
	}
	if r.Table != nil {
		out.Table = &jsonTable{Title: r.Table.Title, Columns: r.Table.Columns, Rows: r.Table.Rows}
	}
	if r.Figure != nil {
		f := &jsonFigure{Title: r.Figure.Title, XLabel: r.Figure.XLabel, YLabel: r.Figure.YLabel}
		for _, s := range r.Figure.Series {
			js := jsonSeries{Name: s.Name}
			for _, p := range s.Points {
				js.X = append(js.X, p.X)
				js.Y = append(js.Y, p.Y)
			}
			f.Series = append(f.Series, js)
		}
		out.Figure = f
	}
	return json.MarshalIndent(out, "", "  ")
}
