package experiments

import (
	"fmt"

	"powermanna/internal/bus"
	"powermanna/internal/cpu"
	"powermanna/internal/machine"
	"powermanna/internal/node"
	"powermanna/internal/stats"
)

// The node-scalability ablation reproduces the Section 2 design claim:
// "detailed simulations ... showed that the actual node design would
// support up to four processors without their significantly hindering one
// another. We found that the limiting factor is not the bandwidth of the
// node memory (thanks to its efficient implementation) but the
// sequentialization of the address phases enforced by the snoop protocol
// of the MPC620 processor."
//
// The workload is coherence-heavy but data-light, the regime where that
// claim bites: each processor streams a private cache-resident array and
// regularly writes lines of a shared region that every processor writes
// in turn, so the fabric sees a high rate of invalidating address phases
// answered cache-to-cache (the previous writer owns the line Modified)
// while the memory datapath stays almost idle.

const (
	scalePrivateBase = 0x1000_0000
	scaleSharedBase  = 0x9001_0000 // offset past the private arrays' direct-mapped L2 sets
	scaleSharedLines = 64
	scalePrivLines   = 128 // 8 KB: comfortably L1-resident beside the shared lines
)

// scaleKernel is one CPU's stream.
type scaleKernel struct {
	p     *node.Proc
	id    int
	iters int
	done  int
	cost  *cpu.CostModel
	lat   [2]int64
}

func scaleTemplate() *cpu.Template {
	return &cpu.Template{
		Name:    "scale",
		NumRegs: 4,
		Instrs: []cpu.Instr{
			{Class: cpu.Load, Src1: 3, Src2: -1, Dst: 0, MemSlot: 0}, // private
			{Class: cpu.Load, Src1: 3, Src2: -1, Dst: 1, MemSlot: 1}, // shared
			{Class: cpu.IntALU, Src1: 0, Src2: 1, Dst: 2, MemSlot: -1},
			{Class: cpu.IntALU, Src1: 3, Src2: -1, Dst: 3, MemSlot: -1},
			{Class: cpu.Branch, Src1: -1, Src2: -1, Dst: -1, MemSlot: -1},
		},
	}
}

func (k *scaleKernel) Proc() *node.Proc { return k.p }

func (k *scaleKernel) Step() bool {
	if k.done >= k.iters {
		return false
	}
	i := k.done
	priv := uint64(scalePrivateBase) + uint64(k.id)<<24 + uint64(i%scalePrivLines)*64
	k.lat[0] = k.cost.Quantize(k.p.Access(priv, false))
	k.lat[1] = k.lat[0]
	if i%12 == 0 {
		// Write a rotating shared line that every processor writes in
		// turn. The previous writer holds it Modified, so each write is
		// an invalidating address phase answered cache-to-cache — the
		// dispatcher-serialized transaction, with no memory data moved.
		shared := uint64(scaleSharedBase) + uint64(i/12%scaleSharedLines)*64
		if stall := k.p.Access(shared, true) - k.p.L1HitCycles(); stall > 0 {
			k.p.AdvanceCycles(float64(stall))
		}
	}
	k.p.AdvanceCycles(k.cost.CyclesPerIter(k.lat[:]))
	k.done++
	return k.done < k.iters
}

// NodeScalability sweeps the PowerMANNA node from 1 to 6 processors.
func NodeScalability(opt Options) Result {
	iters := 400_000
	if opt.Quick {
		iters = 60_000
	}
	fig := &stats.Figure{
		Title:  "Ablation: PowerMANNA node scalability (coherence-heavy workload)",
		XLabel: "processors",
		YLabel: "speedup",
	}
	speedups := stats.Series{Name: "speedup"}
	snoopUtil := stats.Series{Name: "snoop util x10"}
	memUtil := stats.Series{Name: "mem util x10"}
	var base float64
	notes := []string{}
	for _, cpus := range []int{1, 2, 3, 4, 5, 6} {
		nd := node.New(machine.PowerMANNAWithCPUs(cpus))
		kernels := make([]node.Kernel, cpus)
		for c := 0; c < cpus; c++ {
			kernels[c] = &scaleKernel{
				p:     nd.Proc(c),
				id:    c,
				iters: iters,
				cost:  cpu.NewCostModel(nd.Proc(c).Core(), scaleTemplate()),
			}
		}
		makespan := node.RunParallel(kernels...)
		throughput := float64(cpus) * float64(iters) / makespan.Seconds()
		if cpus == 1 {
			base = throughput
		}
		sp := throughput / base
		speedups.Add(float64(cpus), sp)
		sw, _ := nd.Fabric().(*bus.SwitchedFabric)
		su := sw.SnoopUtilization(makespan)
		mu := nd.Memory().Stats().DatapathBusy.Seconds() / makespan.Seconds()
		snoopUtil.Add(float64(cpus), su*10)
		memUtil.Add(float64(cpus), mu*10)
		notes = append(notes, fmt.Sprintf("%d CPUs: speedup %.2f, snoop util %.0f%%, memory util %.0f%%", cpus, sp, su*100, mu*100))
	}
	fig.Add(speedups)
	fig.Add(snoopUtil)
	fig.Add(memUtil)
	return Result{
		ID:          "nodescale",
		Description: "node speedup 1..6 CPUs; which shared resource binds",
		Expected:    "near-linear to 4 processors; beyond that the dispatcher's serialized address/snoop phases saturate while the memory datapath stays far from its 640 MB/s limit",
		Figure:      fig,
		Notes:       notes,
	}
}
