package experiments

import (
	"fmt"

	"powermanna/internal/dispatch"
	"powermanna/internal/stats"
)

// DispatcherAblation exercises the protocol engine behind the node's
// patented centerpiece (Figures 2–3): the central dispatcher that keeps
// "pipelining, split transactions, intervention, out-of-order
// bus-transfer completion as well as the snoop protocols" transparent to
// the other units. The ablation answers: how much of the node's
// transaction throughput comes from each MPC620 bus feature the paper
// credits — transaction pipelining and tagged out-of-order completion?
//
// Workload: two masters issue interleaved coherent reads; half the lines
// are owned Modified by a peer (intervention supplies them in 4 bus
// cycles) and half come from memory (14 cycles). Reported: bus cycles
// per completed transaction for each dispatcher build.
func DispatcherAblation(opt Options) Result {
	txns := 2000
	if opt.Quick {
		txns = 400
	}

	run := func(cfg dispatch.Config) (cyclesPerTxn float64, ooo int64) {
		d := dispatch.New(cfg, func(t *dispatch.Txn) bool {
			// Alternate fast (cache-to-cache) and slow (memory) lines
			// within each master's stream, so tagged reordering has
			// something to reorder.
			return (t.LineAddr/64)%4 < 2
		})
		for i := 0; i < txns; i++ {
			d.Submit(i%cfg.Masters, dispatch.Read, uint64(i*64))
		}
		cycle, ok := d.RunUntilIdle(int64(txns) * 100)
		if !ok {
			panic("dispatch: ablation did not drain")
		}
		return float64(cycle) / float64(txns), d.Stats().OutOfOrderReturns
	}

	fig := &stats.Figure{
		Title:  "Ablation: dispatcher pipelining and out-of-order completion",
		XLabel: "pipeline depth",
		YLabel: "bus cycles per transaction",
	}
	oooSeries := stats.Series{Name: "out-of-order (MPC620)"}
	inoSeries := stats.Series{Name: "in-order"}
	var base, best float64
	var oooAt4 int64
	for _, depth := range []int{1, 2, 4, 8} {
		cfg := dispatch.DefaultConfig()
		cfg.MaxOutstanding = depth
		c, ooo := run(cfg)
		oooSeries.Add(float64(depth), c)
		if depth == 1 {
			base = c
		}
		if depth == 4 {
			best = c
			oooAt4 = ooo
		}
		cfg.InOrderData = true
		cIno, _ := run(cfg)
		inoSeries.Add(float64(depth), cIno)
	}
	fig.Add(oooSeries)
	fig.Add(inoSeries)

	return Result{
		ID:          "dispatcher",
		Description: "protocol-engine sweep: pipeline depth x (in-order vs tagged out-of-order data return)",
		Expected:    "the paper credits the MPC620 bus's pipelining and tagged out-of-order completion with 'maximum parallelism between the competing transfers'; deeper pipelines and reordering both cut cycles per transaction",
		Figure:      fig,
		Notes: []string{
			fmt.Sprintf("depth 1: %.1f cycles/txn; depth 4 out-of-order: %.1f (%.2fx)", base, best, base/best),
			fmt.Sprintf("out-of-order returns at depth 4: %d of %d transactions", oooAt4, txns),
		},
	}
}
