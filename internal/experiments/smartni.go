package experiments

import (
	"fmt"

	"powermanna/internal/comm"
	"powermanna/internal/nic"
	"powermanna/internal/stats"
)

// SmartNI quantifies the paper's central interface argument (Sections
// 3.3 and 6): a CPU-driven memory-mapped link interface against a NIC on
// the I/O bus. Both eight-byte latency budgets are decomposed stage by
// stage: the PCI-NIC path carries a doorbell, an embedded processor
// twice, and a DMA into host memory — stages the PowerMANNA path simply
// does not have. The mechanistic NIC model is cross-validated against
// the published BIP numbers in its tests.
func SmartNI(Options) Result {
	const n = 8
	pm := comm.NewPowerMANNA()
	myri := nic.MyrinetPPro()

	tbl := &stats.Table{
		Title:   fmt.Sprintf("Latency budget for a %d-byte message (one way)", n),
		Columns: []string{"PowerMANNA stage", "time", "Myrinet-PCI stage", "time"},
	}
	pmStages := pm.LatencyBreakdown(n)
	nicStages := myri.Breakdown(n)
	rows := len(pmStages)
	if len(nicStages) > rows {
		rows = len(nicStages)
	}
	for i := 0; i < rows; i++ {
		var a, b, c, d string
		if i < len(pmStages) {
			a, b = pmStages[i].Name, pmStages[i].Time.String()
		}
		if i < len(nicStages) {
			c, d = nicStages[i].Name, nicStages[i].Time.String()
		}
		tbl.AddRow(a, b, c, d)
	}
	tbl.AddRow("TOTAL", pm.OneWayLatency(n).String(), "TOTAL", myri.OneWayLatency(n).String())

	ratio := float64(myri.OneWayLatency(n)) / float64(pm.OneWayLatency(n))
	return Result{
		ID:          "smartni",
		Description: "CPU-driven link interface vs PCI-attached NIC, stage by stage",
		Expected:    "the NIC path's doorbell, embedded processor and DMA stages make it ~2.3x slower for small messages (the paper's 6.4 vs 2.75 us)",
		Table:       tbl,
		Notes: []string{
			fmt.Sprintf("PCI-NIC / PowerMANNA latency ratio at %d bytes: %.2fx (paper: 2.33x)", n, ratio),
		},
	}
}
