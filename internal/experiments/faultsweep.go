package experiments

import (
	"fmt"

	"powermanna/internal/fault"
	"powermanna/internal/stats"
	"powermanna/internal/topo"
)

// FaultSweep regenerates the degradation story behind the paper's
// duplicated communication system (Section 4): the link-cut campaign's
// sweep of plane-A uplink faults, reported as delivered / retried /
// failed counts and latency inflation per fault count. Quick runs the
// eight-node cluster; the full sweep runs the 256-processor system,
// where failover routes cross the central stage. The campaign honors
// Options.Engine, so pmbench --engine par sweeps the rows on the
// parallel engine — with byte-identical output, per the equivalence
// contract.
func FaultSweep(opt Options) Result {
	fopt := fault.Options{Seed: DefaultSeed, Engine: opt.Engine}
	if opt.Seed != 0 {
		fopt.Seed = opt.Seed
	}
	if !opt.Quick {
		fopt.Topology = topo.System256()
	}
	c, _ := fault.CampaignByName("link-cut")
	res, err := fault.Run(c, fopt)

	tbl := &stats.Table{
		Title:   "link-cut degradation sweep",
		Columns: []string{"faults", "delivered", "retried", "failed", "skipped", "inflation"},
	}
	r := Result{
		ID:          "faultsweep",
		Description: "duplicated-network degradation under plane-A link cuts (Section 4)",
		Expected:    "failover to plane B keeps messages flowing: retries rise with the fault count while failures stay at zero and latency inflates only modestly",
		Table:       tbl,
	}
	if err != nil {
		r.Notes = append(r.Notes, fmt.Sprintf("campaign failed: %v", err))
		return r
	}
	worst := res.Rows[0]
	for _, row := range res.Rows {
		tbl.AddRow(
			fmt.Sprintf("%d", row.Faults),
			fmt.Sprintf("%d", row.Delivered),
			fmt.Sprintf("%d", row.Retried),
			fmt.Sprintf("%d", row.Failed),
			fmt.Sprintf("%d", row.Skipped),
			fmt.Sprintf("%.3f", row.Inflation),
		)
		worst = row
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("at %d faults: %d of %d messages retried over plane B, %d failed",
			worst.Faults, worst.Retried, worst.Delivered+worst.Failed, worst.Failed))
	if worst.Failed == 0 {
		r.Notes = append(r.Notes, "no message lost at any fault count — the duplicated network's whole point")
	}
	return r
}
