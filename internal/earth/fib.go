package earth

import "powermanna/internal/sim"

// Fib is the classic EARTH benchmark (used throughout reference [18]):
// doubly recursive Fibonacci where every call level is a threaded
// procedure, children spread across the machine, and results flow back
// through DATA_SYNC tokens into sync slots. It exercises exactly what
// EARTH is for — huge numbers of tiny fibers whose cost is dominated by
// token handling and network latency.

// fibLocalCutoff keeps the smallest subtrees on the spawning node; below
// this size the spawn/token overhead outweighs any parallelism.
const fibLocalCutoff = 8

// resultAddr is where RunFib's final value lands on node 0.
const resultAddr = 1

// FibProgram holds the registered procedure IDs for one System.
type FibProgram struct {
	fib, sum, done ProcID
}

// InstallFib registers the Fibonacci program into a system.
func InstallFib(s *System) *FibProgram {
	p := &FibProgram{}
	p.fib = s.Register(func(ctx *Ctx, args []int64) {
		n, pNode, pAddr, pSlot := args[0], int(args[1]), uint64(args[2]), uint64(args[3])
		ctx.Charge(15)
		if n < 2 {
			ctx.DataSync(pNode, pAddr, n, SlotRef{Node: pNode, ID: pSlot})
			return
		}
		a, b := ctx.AllocBuf(), ctx.AllocBuf()
		slot := ctx.SyncSlot(2, p.sum, int64(a), int64(b), int64(pNode), int64(pAddr), int64(pSlot))
		left := ctx.Node()
		right := ctx.Node()
		if n >= fibLocalCutoff {
			// Spread the right subtree; the left stays local. The offset
			// varies with n so successive levels land on distinct nodes.
			right = (ctx.Node() + int(n)) % ctx.Nodes()
		}
		ctx.Invoke(left, p.fib, n-1, int64(ctx.Node()), int64(a), int64(slot.ID))
		ctx.Invoke(right, p.fib, n-2, int64(ctx.Node()), int64(b), int64(slot.ID))
	})
	p.sum = s.Register(func(ctx *Ctx, args []int64) {
		a, b := uint64(args[0]), uint64(args[1])
		pNode, pAddr, pSlot := int(args[2]), uint64(args[3]), uint64(args[4])
		ctx.Charge(6)
		v := ctx.Read(a) + ctx.Read(b)
		ctx.DataSync(pNode, pAddr, v, SlotRef{Node: pNode, ID: pSlot})
	})
	p.done = s.Register(func(ctx *Ctx, args []int64) {
		// The result already sits at resultAddr; nothing left to do.
	})
	return p
}

// Start posts the root call: fib(n) with the result delivered to
// (node 0, resultAddr). Call before System.Run.
func (p *FibProgram) Start(s *System, n int64) {
	main := s.Register(func(ctx *Ctx, args []int64) {
		slot := ctx.SyncSlot(1, p.done)
		ctx.Invoke(ctx.Node(), p.fib, args[0], int64(ctx.Node()), resultAddr, int64(slot.ID))
	})
	s.Invoke(0, main, n)
}

// RunFib builds, runs and reads back fib(n) on a system, returning the
// value and the simulated makespan. A non-nil error means a control
// token was lost on both network planes (System.Err): the run degraded
// and the value and makespan are not meaningful.
func RunFib(s *System, n int64) (int64, sim.Time, error) {
	p := InstallFib(s)
	p.Start(s, n)
	makespan := s.Run()
	return s.Mem(0, resultAddr), makespan, s.Err()
}

// FibReference computes fib(n) directly for validation.
func FibReference(n int64) int64 {
	a, b := int64(0), int64(1)
	for i := int64(0); i < n; i++ {
		a, b = b, a+b
	}
	return a
}
