package earth

import (
	"testing"

	"powermanna/internal/metrics"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

func singleNode() *topo.Topology { return topo.New("single", 1) }

func TestLocalInvokeAndCharge(t *testing.T) {
	s := New(singleNode(), DefaultParams())
	ran := false
	proc := s.Register(func(ctx *Ctx, args []int64) {
		ran = true
		if args[0] != 42 {
			t.Errorf("args = %v", args)
		}
		ctx.Charge(1000)
		ctx.Write(7, args[0])
	})
	s.Invoke(0, proc, 42)
	makespan := s.Run()
	if !ran {
		t.Fatal("fiber did not run")
	}
	if s.Mem(0, 7) != 42 {
		t.Error("local write lost")
	}
	// Dispatch (40) + charge (1000) + write (1) cycles at 180 MHz ≈ 5.8 µs.
	if makespan < 5*sim.Microsecond || makespan > 7*sim.Microsecond {
		t.Errorf("makespan = %v, want ~5.8us", makespan)
	}
	if s.Stats().FibersRun != 1 {
		t.Errorf("FibersRun = %d", s.Stats().FibersRun)
	}
}

func TestSyncSlotFiresOnceAtZero(t *testing.T) {
	s := New(singleNode(), DefaultParams())
	fired := 0
	cont := s.Register(func(ctx *Ctx, args []int64) { fired++ })
	main := s.Register(func(ctx *Ctx, args []int64) {
		slot := ctx.SyncSlot(3, cont)
		for i := 0; i < 3; i++ {
			ctx.DataSync(0, uint64(100+i), int64(i), slot)
		}
	})
	s.Invoke(0, main)
	s.Run()
	if fired != 1 {
		t.Errorf("continuation fired %d times, want 1", fired)
	}
	for i := 0; i < 3; i++ {
		if s.Mem(0, uint64(100+i)) != int64(i) {
			t.Errorf("mem[%d] = %d", 100+i, s.Mem(0, uint64(100+i)))
		}
	}
}

func TestRemoteGetSync(t *testing.T) {
	s := New(topo.Cluster8(), DefaultParams())
	s.SetMem(3, 500, 777)
	var got int64
	var latency sim.Time
	var start sim.Time
	read := s.Register(func(ctx *Ctx, args []int64) {
		got = ctx.Read(uint64(args[0]))
		latency = ctx.Now() - start
	})
	main := s.Register(func(ctx *Ctx, args []int64) {
		buf := ctx.AllocBuf()
		slot := ctx.SyncSlot(1, read, int64(buf))
		start = ctx.Now()
		ctx.GetSync(3, 500, buf, slot)
	})
	s.Invoke(0, main)
	s.Run()
	if got != 777 {
		t.Fatalf("GetSync returned %d, want 777", got)
	}
	// Split-phase round trip: two control tokens through one crossbar
	// plus SU/EU handling — single-digit microseconds, the "low
	// communication cost close to the hardware limits" of [18].
	if latency < 1*sim.Microsecond || latency > 10*sim.Microsecond {
		t.Errorf("remote get round trip = %v, want a few us", latency)
	}
	if s.Stats().RemoteTokens != 2 {
		t.Errorf("remote tokens = %d, want 2 (request + reply)", s.Stats().RemoteTokens)
	}
}

func TestFibCorrectness(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 5, 10, 15} {
		s := New(topo.Cluster8(), DefaultParams())
		got, _, err := RunFib(s, n)
		if err != nil {
			t.Fatalf("fib(%d): %v", n, err)
		}
		if want := FibReference(n); got != want {
			t.Errorf("fib(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFibParallelSpeedup(t *testing.T) {
	const n = 18
	s1 := New(singleNode(), DefaultParams())
	v1, t1, err1 := RunFib(s1, n)
	s8 := New(topo.Cluster8(), DefaultParams())
	v8, t8, err8 := RunFib(s8, n)
	if err1 != nil || err8 != nil {
		t.Fatalf("fib errors: %v, %v", err1, err8)
	}
	if v1 != v8 || v1 != FibReference(n) {
		t.Fatalf("values diverge: %d vs %d", v1, v8)
	}
	speedup := float64(t1) / float64(t8)
	if speedup < 2 {
		t.Errorf("8-node speedup = %.2f, want > 2", speedup)
	}
	if s8.Stats().RemoteTokens == 0 {
		t.Error("no remote tokens despite 8 nodes")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		s := New(topo.Cluster8(), DefaultParams())
		_, makespan, _ := RunFib(s, 14)
		return makespan
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestLostTokenDegradesToError(t *testing.T) {
	s := New(topo.Cluster8(), DefaultParams())
	// Sever every node uplink on both planes before any traffic: the
	// first remote token fails over, exhausts its attempts, and is lost.
	// The run must degrade to an error — not panic — so fault campaigns
	// can sweep fib under link cuts.
	for n := 0; n < s.Nodes(); n++ {
		s.Network().CutWire(n, topo.NetworkA, 0)
		s.Network().CutWire(n, topo.NetworkB, 0)
	}
	_, _, err := RunFib(s, 12)
	if err == nil {
		t.Fatal("fib over a fully severed network reported no error")
	}
	if s.Err() == nil {
		t.Error("System.Err is nil after a lost token")
	}
}

func TestSlotMisusePanics(t *testing.T) {
	s := New(topo.Cluster8(), DefaultParams())
	cont := s.Register(func(ctx *Ctx, args []int64) {})
	cases := map[string]Proc{
		"zero-count slot": func(ctx *Ctx, args []int64) {
			ctx.SyncSlot(0, cont)
		},
		"foreign DataSync slot": func(ctx *Ctx, args []int64) {
			slot := ctx.SyncSlot(1, cont)
			ctx.DataSync(1, 10, 5, slot) // slot lives on node 0, write to node 1
		},
		"foreign GetSync slot": func(ctx *Ctx, args []int64) {
			ctx.GetSync(1, 10, 20, SlotRef{Node: 1, ID: 1})
		},
	}
	for name, body := range cases {
		s := New(topo.Cluster8(), DefaultParams())
		proc := s.Register(body)
		s.Invoke(0, proc)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			s.Run()
		}()
	}
	_ = s
}

func TestOverDecrementPanics(t *testing.T) {
	s := New(singleNode(), DefaultParams())
	cont := s.Register(func(ctx *Ctx, args []int64) {})
	main := s.Register(func(ctx *Ctx, args []int64) {
		slot := ctx.SyncSlot(1, cont)
		ctx.DataSync(0, 1, 1, slot)
		ctx.DataSync(0, 2, 2, slot) // second decrement: slot already gone
	})
	s.Invoke(0, main)
	defer func() {
		if recover() == nil {
			t.Error("over-decrement did not panic")
		}
	}()
	s.Run()
}

func TestEUSerializesFibers(t *testing.T) {
	// Two heavy fibers on one node run back to back on the single EU.
	s := New(singleNode(), DefaultParams())
	heavy := s.Register(func(ctx *Ctx, args []int64) { ctx.Charge(180_000) }) // 1 ms
	s.Invoke(0, heavy)
	s.Invoke(0, heavy)
	makespan := s.Run()
	if makespan < 2*sim.Millisecond {
		t.Errorf("two 1 ms fibers finished in %v, want >= 2ms (one EU)", makespan)
	}
}

// TestFiberDwellHistogram pins the ready-queue dwell instrument: every
// dequeue observes a dwell — including the zero-dwell dequeues of an
// idle EU — so the histogram's count equals the fiber count, and a
// loaded run records at least one zero dwell (the very first fiber
// starts on an empty EU).
func TestFiberDwellHistogram(t *testing.T) {
	s := New(topo.Cluster8(), DefaultParams())
	reg := metrics.NewRegistry()
	s.SetMetrics(reg)
	if _, _, err := RunFib(s, 12); err != nil {
		t.Fatal(err)
	}
	dwell := reg.TimeHistogram(MetricFiberDwell, nil)
	if got, want := dwell.Count(), s.Stats().FibersRun; got != want {
		t.Errorf("dwell observations = %d, fibers run = %d", got, want)
	}
	if dwell.Count() == 0 {
		t.Fatal("no fibers ran")
	}
}
