// Package earth is a fine-grain multithreaded runtime in the style of
// the EARTH system (Hum, Maquelin, Theobald, Tian, Gao, Hendren — the
// paper's reference [18]), which Section 7 names as the lightweight
// communication software being ported to PowerMANNA: "for the forerunner
// MANNA machine, the EARTH system was shown to offer low communication
// cost close to the hardware limits."
//
// The EARTH model splits programs into *fibers* — short threads that run
// to completion without blocking — synchronized through *sync slots*:
// counters that, on reaching zero, enable a continuation fiber. All
// long-latency actions are split-phase: GET_SYNC fetches a remote word
// and decrements a slot when the reply lands; DATA_SYNC writes a word
// and decrements a slot; INVOKE spawns a threaded procedure on any node.
//
// On EARTH-MANNA the two CPUs of a node divide the work: one runs the
// Execution Unit (EU, runs fibers), the other the Synchronization Unit
// (SU, services tokens and remote requests). The PowerMANNA node
// inherits that split, and this simulation models it the same way: per
// node an EU timeline and an SU timeline, with control messages carried
// by the simulated crossbar network of internal/netsim.
//
// Everything is functional and timed at once: fibers execute real Go
// code against per-node simulated memory, while their costs and every
// token's network transit advance simulated time through one
// deterministic event scheduler.
package earth

import (
	"fmt"

	"powermanna/internal/metrics"
	"powermanna/internal/netsim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
)

// Metric names the runtime feeds when a registry is attached.
const (
	// MetricTokenLatency is the delivery-latency histogram of remote
	// control tokens (post to SU arrival, failover costs included); a
	// split-phase GET_SYNC round trip is two such tokens, request and
	// reply, each observed.
	MetricTokenLatency = "earth.token.latency"
	// MetricTokensRemote counts tokens that crossed the network.
	MetricTokensRemote = "earth.token.remote"
	// MetricFiberDwell is the ready-queue dwell-time histogram: how long
	// each fiber sat ready before its EU dequeued it, observed on every
	// dequeue — including the zero-dwell dequeues of an idle EU, so the
	// histogram's count equals the fiber count and its shape exposes EU
	// backlog rather than just its tail.
	MetricFiberDwell = "earth.fiber.dwell"
	// MetricReadyPeak is the high-water mark of any node's ready-fiber
	// queue — how much latent parallelism the split-phase style exposed.
	MetricReadyPeak = "earth.ready.peak"
)

// Params are the runtime's cost constants, calibrated to the EARTH-MANNA
// measurements of reference [18] (fiber switches of tens of cycles,
// split-phase remote operations bounded by network latency).
type Params struct {
	// CPUClock is the node processor clock (MPC620, 180 MHz).
	CPUClock sim.Clock
	// FiberDispatchCycles is the EU cost to enable and dispatch a fiber.
	FiberDispatchCycles int64
	// SpawnCycles is the EU cost to create and post a token.
	SpawnCycles int64
	// SUOpCycles is the SU cost to service one token or remote request.
	SUOpCycles int64
	// CtrlBytes is the size of a control token on the wire (opcode,
	// addresses, payload word, slot reference).
	CtrlBytes int
}

// DefaultParams returns the calibrated EARTH-on-PowerMANNA constants.
func DefaultParams() Params {
	return Params{
		CPUClock:            sim.ClockMHz(180),
		FiberDispatchCycles: 40, // calibrated: EARTH fiber switch
		SpawnCycles:         60, // calibrated: token creation + post
		SUOpCycles:          50, // calibrated: SU service per token
		CtrlBytes:           24,
	}
}

// ProcID identifies a registered threaded procedure.
type ProcID int

// Proc is a threaded-procedure body: a fiber that runs to completion,
// issuing split-phase operations through the context.
type Proc func(ctx *Ctx, args []int64)

// SlotRef names a sync slot on a node.
type SlotRef struct {
	Node int
	ID   uint64
}

// System is one EARTH machine: a set of nodes over a simulated
// interconnect. Control tokens travel through per-node fault-aware
// transports, so split-phase operations survive a faulted plane A by
// failing over to plane B like every other software layer.
type System struct {
	params Params
	sched  sim.Engine
	net    *netsim.Network
	topo   *topo.Topology
	nodes  []*nodeState
	tps    []*netsim.Transport
	procs  []Proc

	fibersRun int64
	tokens    int64
	remote    int64

	// err is the first fatal runtime error (a token lost on both planes);
	// once set, the run is degraded and Run's caller must check Err.
	err error
	// rec, when non-nil, records fiber, SU-service and token-lifetime
	// spans. Attached via SetRecorder.
	rec *trace.Recorder
	// met holds the runtime's resolved metrics instruments; the zero
	// value is "metrics off". Attached via SetMetrics.
	met earthInstruments
}

// earthInstruments are the runtime's resolved nil-safe instruments.
type earthInstruments struct {
	tokenLatency *metrics.Histogram
	tokensRemote *metrics.Counter
	fiberDwell   *metrics.Histogram
	readyPeak    *metrics.Gauge
}

type fiberInst struct {
	proc ProcID
	args []int64
	// readyAt is when the fiber entered the ready queue; runFiber
	// observes dequeue time minus readyAt as the dwell.
	readyAt sim.Time
}

type syncSlot struct {
	count int
	cont  fiberInst
}

type nodeState struct {
	id      int
	euFree  sim.Time
	suFree  sim.Time
	euIdle  bool
	ready   []fiberInst
	mem     map[uint64]int64
	slots   map[uint64]*syncSlot
	nextSlt uint64
	nextBuf uint64
}

// New builds an EARTH system over a topology with the default failover
// protocol.
func New(t *topo.Topology, p Params) *System {
	return NewWithFailover(t, p, netsim.DefaultFailover())
}

// NewWithFailover builds an EARTH system whose per-node transports run
// the given failover configuration.
func NewWithFailover(t *topo.Topology, p Params, cfg netsim.FailoverConfig) *System {
	return NewWithEngine(t, p, cfg, sim.NewScheduler())
}

// NewWithEngine builds an EARTH system over an explicit event engine —
// the hook the parallel campaigns use to run a whole EARTH machine on
// one psim shard, where the shard's heap is the runtime's event queue.
// The engine must honor sim.Engine's (time, seq) dispatch order; both
// the sequential scheduler and a psim shard do.
func NewWithEngine(t *topo.Topology, p Params, cfg netsim.FailoverConfig, eng sim.Engine) *System {
	s := &System{
		params: p,
		sched:  eng,
		net:    netsim.New(t),
		topo:   t,
	}
	for i := 0; i < t.Nodes(); i++ {
		s.nodes = append(s.nodes, &nodeState{
			id:     i,
			euIdle: true,
			mem:    make(map[uint64]int64),
			slots:  make(map[uint64]*syncSlot),
			// Buffers allocate downward from a high watermark so they
			// never collide with program addresses.
			nextBuf: 1 << 40,
		})
		s.tps = append(s.tps, s.net.MustTransport(i, cfg))
	}
	return s
}

// Network exposes the underlying interconnect — for fault injection and
// degraded-mode counters; tokens travel through the per-node transports.
func (s *System) Network() *netsim.Network { return s.net }

// SetRecorder attaches a trace recorder to the runtime and its network:
// fibers, SU token service and token lifetimes are recorded alongside
// the network's own message and failover spans. A nil recorder detaches.
func (s *System) SetRecorder(r *trace.Recorder) {
	s.rec = r
	s.net.SetRecorder(r)
}

// SetMetrics attaches a metrics registry to the runtime and its network:
// remote-token delivery latencies, the remote-token count, the
// ready-queue dwell histogram and the ready-queue high-water mark land
// in the earth.* instruments, and the network feeds its own netsim.*
// and xbar.* families. A nil registry detaches everything.
func (s *System) SetMetrics(m *metrics.Registry) {
	if m == nil {
		s.met = earthInstruments{}
	} else {
		s.met = earthInstruments{
			// Token latencies share the network's bucket geometry so the
			// runtime view lines up under the transport view in the dump.
			tokenLatency: m.TimeHistogram(MetricTokenLatency, metrics.TimeBuckets(sim.Microsecond, 2, 10)),
			tokensRemote: m.Counter(MetricTokensRemote),
			fiberDwell:   m.TimeHistogram(MetricFiberDwell, metrics.TimeBuckets(sim.Microsecond, 2, 10)),
			readyPeak:    m.Gauge(MetricReadyPeak),
		}
	}
	s.net.SetMetrics(m)
	// Label the runtime's token traffic so its delivered latencies read
	// separately from any co-tenant traffic sharing the network.
	for _, tp := range s.tps {
		tp.SetTenant("earth")
	}
}

// Err reports the first fatal runtime error of the run — a control token
// lost on both network planes, which deadlocks the sync-slot graph. A
// non-nil Err means the makespan and program results are not meaningful.
func (s *System) Err() error { return s.err }

// fail records the first fatal error; later errors are consequences of
// the first and are dropped.
func (s *System) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Register adds a threaded procedure and returns its ID. All procedures
// must be registered before Run.
func (s *System) Register(p Proc) ProcID {
	s.procs = append(s.procs, p)
	return ProcID(len(s.procs) - 1)
}

// Nodes reports the node count.
func (s *System) Nodes() int { return len(s.nodes) }

// Mem reads a word of node n's memory after (or during) a run.
func (s *System) Mem(n int, addr uint64) int64 { return s.nodes[n].mem[addr] }

// SetMem initializes node memory before a run.
func (s *System) SetMem(n int, addr uint64, v int64) { s.nodes[n].mem[addr] = v }

// Stats reports execution counters.
type Stats struct {
	FibersRun     int64
	Tokens        int64
	RemoteTokens  int64
	SimulatedTime sim.Time
}

// Stats returns the accumulated counters.
func (s *System) Stats() Stats {
	return Stats{
		FibersRun:     s.fibersRun,
		Tokens:        s.tokens,
		RemoteTokens:  s.remote,
		SimulatedTime: s.makespan(),
	}
}

func (s *System) cycles(n int64) sim.Time { return s.params.CPUClock.Cycles(n) }

// Invoke posts the initial token: proc runs on node with args at t=0.
func (s *System) Invoke(node int, proc ProcID, args ...int64) {
	s.enqueueFiber(node, fiberInst{proc: proc, args: args}, 0)
}

// Run drains the event queue and returns the simulated makespan: the
// latest EU or SU completion across all nodes (the last event's firing
// time alone misses work the final fiber performed).
func (s *System) Run() sim.Time {
	s.sched.Run()
	return s.makespan()
}

func (s *System) makespan() sim.Time {
	var m sim.Time
	for _, ns := range s.nodes {
		m = sim.Max(m, sim.Max(ns.euFree, ns.suFree))
	}
	return m
}

// enqueueFiber makes a fiber ready on a node at time t and kicks the EU
// if it is idle.
func (s *System) enqueueFiber(node int, f fiberInst, t sim.Time) {
	ns := s.nodes[node]
	f.readyAt = t
	ns.ready = append(ns.ready, f)
	s.met.readyPeak.Max(int64(len(ns.ready)))
	s.kickEU(node, t)
}

func (s *System) kickEU(node int, t sim.Time) {
	ns := s.nodes[node]
	if !ns.euIdle || len(ns.ready) == 0 {
		return
	}
	ns.euIdle = false
	start := sim.Max(t, ns.euFree)
	s.sched.At(start, func() { s.runFiber(node) })
}

// runFiber pops and executes one ready fiber on the node's EU.
func (s *System) runFiber(node int) {
	ns := s.nodes[node]
	if len(ns.ready) == 0 {
		ns.euIdle = true
		return
	}
	f := ns.ready[0]
	ns.ready = ns.ready[1:]
	s.fibersRun++

	start := sim.Max(s.sched.Now(), ns.euFree)
	// A fiber enqueued with a future ready time can be popped earlier by
	// the EU's self-requeue loop; its dwell is zero, not negative.
	s.met.fiberDwell.ObserveTime(sim.Max(0, start-f.readyAt))
	ctx := &Ctx{sys: s, node: node, now: start}
	ctx.now += s.cycles(s.params.FiberDispatchCycles)
	s.procs[f.proc](ctx, f.args)
	ns.euFree = ctx.now
	if s.rec.Enabled() {
		s.rec.Span(trace.CPUTrack(node, 0), "earth", "fiber", start, ctx.now)
	}

	if len(ns.ready) > 0 {
		s.sched.At(ns.euFree, func() { s.runFiber(node) })
	} else {
		ns.euIdle = true
	}
}

// token kinds carried between (and within) nodes.
type tokenKind uint8

const (
	tokInvoke tokenKind = iota
	tokDataSync
	tokGetReq
)

// String names the token kind for trace labels and diagnostics.
func (k tokenKind) String() string {
	switch k {
	case tokInvoke:
		return "invoke"
	case tokDataSync:
		return "data-sync"
	case tokGetReq:
		return "get-req"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

type token struct {
	kind tokenKind
	// invoke
	proc ProcID
	args []int64
	// data_sync / get reply target
	addr  uint64
	value int64
	slot  SlotRef
	// get request
	replyTo SlotRef
	reply   uint64 // destination buffer address on the requester
}

// post routes a token from node src at local time t: locally straight to
// the SU, remotely across the simulated network (both links of the
// duplicated system belong to the application here; plane A is used).
func (s *System) post(src, dst int, tk token, t sim.Time) {
	s.tokens++
	if src == dst {
		s.suService(dst, tk, t)
		return
	}
	s.remote++
	d, err := s.tps[src].Send(t, dst, s.params.CtrlBytes)
	if err != nil {
		s.fail(fmt.Errorf("earth: %v", err))
		return
	}
	if d.Failed {
		// A lost token deadlocks the sync-slot graph: the continuation
		// waiting on it can never fire. The run degrades to an error —
		// already-scheduled events still drain, but Err reports the loss
		// and the caller must discard the makespan.
		if s.rec.Enabled() {
			s.rec.InstantArg(trace.NodeTrack(src), "earth", "token-lost", d.Done,
				fmt.Sprintf("%s %d->%d after %d attempts", tk.kind, src, dst, d.Attempts))
		}
		s.fail(fmt.Errorf("earth: token %s %d->%d lost on both planes at %v after %d attempts",
			tk.kind, src, dst, d.Done, d.Attempts))
		return
	}
	s.met.tokensRemote.Inc()
	s.met.tokenLatency.ObserveTime(d.Done - t)
	if s.rec.Enabled() {
		s.rec.SpanArg(trace.NodeTrack(dst), "earth", "token "+tk.kind.String(), t, d.Done,
			fmt.Sprintf("%d->%d", src, dst))
	}
	s.sched.At(d.Done, func() { s.suService(dst, tk, s.sched.Now()) })
}

// suService processes a token on the destination node's SU.
func (s *System) suService(node int, tk token, t sim.Time) {
	ns := s.nodes[node]
	start := sim.Max(t, ns.suFree)
	done := start + s.cycles(s.params.SUOpCycles)
	ns.suFree = done
	if s.rec.Enabled() {
		s.rec.Span(trace.CPUTrack(node, 1), "earth", "su "+tk.kind.String(), start, done)
	}

	switch tk.kind {
	case tokInvoke:
		s.enqueueFiber(node, fiberInst{proc: tk.proc, args: tk.args}, done)
	case tokDataSync:
		ns.mem[tk.addr] = tk.value
		s.decSlot(tk.slot, done)
	case tokGetReq:
		v := ns.mem[tk.addr]
		s.post(node, tk.replyTo.Node, token{
			kind:  tokDataSync,
			addr:  tk.reply,
			value: v,
			slot:  tk.replyTo,
		}, done)
	}
}

// decSlot decrements a sync slot, firing its continuation at zero.
func (s *System) decSlot(ref SlotRef, t sim.Time) {
	ns := s.nodes[ref.Node]
	slot, ok := ns.slots[ref.ID]
	if !ok {
		panic(fmt.Sprintf("earth: node %d slot %d does not exist", ref.Node, ref.ID))
	}
	slot.count--
	if slot.count < 0 {
		panic(fmt.Sprintf("earth: node %d slot %d over-decremented", ref.Node, ref.ID))
	}
	if slot.count == 0 {
		delete(ns.slots, ref.ID)
		s.enqueueFiber(ref.Node, slot.cont, t)
	}
}

// Ctx is a fiber's handle on the runtime. A fiber runs on one node's EU;
// its operations advance the fiber-local clock and post tokens.
type Ctx struct {
	sys  *System
	node int
	now  sim.Time
}

// Node reports the executing node.
func (c *Ctx) Node() int { return c.sys.nodes[c.node].id }

// Nodes reports the machine size.
func (c *Ctx) Nodes() int { return len(c.sys.nodes) }

// Now reports the fiber-local simulated time.
func (c *Ctx) Now() sim.Time { return c.now }

// Charge accounts local computation in CPU cycles.
func (c *Ctx) Charge(cycles int64) { c.now += c.sys.cycles(cycles) }

// Read reads a word of the local node memory (EU-local, no token).
func (c *Ctx) Read(addr uint64) int64 {
	c.Charge(2)
	return c.sys.nodes[c.node].mem[addr]
}

// Write writes a word of local node memory (EU-local, no token).
func (c *Ctx) Write(addr uint64, v int64) {
	c.Charge(1)
	c.sys.nodes[c.node].mem[addr] = v
}

// AllocBuf reserves a fresh local buffer address.
func (c *Ctx) AllocBuf() uint64 {
	ns := c.sys.nodes[c.node]
	ns.nextBuf--
	return ns.nextBuf
}

// SyncSlot creates a sync slot on this node that, after count
// decrements, enables proc with args.
func (c *Ctx) SyncSlot(count int, proc ProcID, args ...int64) SlotRef {
	if count <= 0 {
		panic(fmt.Sprintf("earth: sync slot count %d", count))
	}
	c.Charge(6)
	ns := c.sys.nodes[c.node]
	ns.nextSlt++
	ns.slots[ns.nextSlt] = &syncSlot{count: count, cont: fiberInst{proc: proc, args: args}}
	return SlotRef{Node: c.node, ID: ns.nextSlt}
}

// Invoke spawns a threaded procedure on a node (split-phase; the fiber
// continues immediately).
func (c *Ctx) Invoke(node int, proc ProcID, args ...int64) {
	c.Charge(c.sys.params.SpawnCycles)
	c.sys.post(c.node, node, token{kind: tokInvoke, proc: proc, args: args}, c.now)
}

// DataSync writes value to (node, addr) and decrements slot when the
// write lands — EARTH's split-phase store-with-synchronization.
func (c *Ctx) DataSync(node int, addr uint64, value int64, slot SlotRef) {
	if slot.Node != node {
		panic("earth: DataSync slot must live on the written node")
	}
	c.Charge(c.sys.params.SpawnCycles)
	c.sys.post(c.node, node, token{kind: tokDataSync, addr: addr, value: value, slot: slot}, c.now)
}

// GetSync fetches (node, addr) into local buffer dst and decrements slot
// (which must live on this node) when the reply lands — EARTH's
// split-phase load.
func (c *Ctx) GetSync(node int, addr uint64, dst uint64, slot SlotRef) {
	if slot.Node != c.node {
		panic("earth: GetSync slot must live on the requesting node")
	}
	c.Charge(c.sys.params.SpawnCycles)
	c.sys.post(c.node, node, token{
		kind:    tokGetReq,
		addr:    addr,
		reply:   dst,
		replyTo: slot,
	}, c.now)
}
