package dispatch

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Masters: 1},
		{Masters: 1, MaxOutstanding: 1},
		{Masters: 1, MaxOutstanding: 1, AddressCycles: 1, DataCycles: 1, MemoryCycles: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Read: "Read", ReadExcl: "ReadExcl", Upgrade: "Upgrade", Writeback: "Writeback"} {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
}

func TestSingleReadLifecycle(t *testing.T) {
	d := New(DefaultConfig(), nil)
	txn := d.Submit(0, Read, 0x40)
	cycle, drained := d.RunUntilIdle(1000)
	if !drained {
		t.Fatal("engine did not drain")
	}
	done, at := txn.Done()
	if !done {
		t.Fatal("transaction incomplete")
	}
	// Address (2) + snoop lag (2) + memory (14) + data (4) ≈ 22 cycles.
	if at < 20 || at > 26 {
		t.Errorf("read completed at cycle %d, want ~22", at)
	}
	if cycle <= at {
		t.Errorf("idle cycle %d not past completion %d", cycle, at)
	}
	s := d.Stats()
	if s.Issued != 1 || s.Completed != 1 || s.AddressTenures != 1 || s.DataTenures != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestUpgradeIsAddressOnly(t *testing.T) {
	d := New(DefaultConfig(), nil)
	txn := d.Submit(0, Upgrade, 0x40)
	d.RunUntilIdle(100)
	done, at := txn.Done()
	if !done {
		t.Fatal("upgrade incomplete")
	}
	if at > 8 {
		t.Errorf("upgrade took %d cycles, want address+snoop only", at)
	}
	if d.Stats().DataTenures != 0 {
		t.Error("upgrade used a data tenure")
	}
}

func TestInterventionIsFasterThanMemory(t *testing.T) {
	run := func(intervene bool) int64 {
		d := New(DefaultConfig(), func(*Txn) bool { return intervene })
		txn := d.Submit(0, Read, 0x80)
		d.RunUntilIdle(1000)
		_, at := txn.Done()
		return at
	}
	mem, c2c := run(false), run(true)
	if c2c >= mem {
		t.Errorf("intervention (%d) not faster than memory (%d)", c2c, mem)
	}
	d := New(DefaultConfig(), func(*Txn) bool { return true })
	d.Submit(0, Read, 0)
	d.RunUntilIdle(1000)
	if d.Stats().Interventions != 1 {
		t.Error("intervention not counted")
	}
}

// The serialized address path: two masters submitting together see their
// address tenures strictly ordered, never overlapping.
func TestAddressTenuresSerialized(t *testing.T) {
	d := New(DefaultConfig(), nil)
	a := d.Submit(0, Upgrade, 0x40)
	b := d.Submit(1, Upgrade, 0x80)
	d.RunUntilIdle(100)
	_, atA := a.Done()
	_, atB := b.Done()
	gap := atA - atB
	if gap < 0 {
		gap = -gap
	}
	if gap < int64(DefaultConfig().AddressCycles) {
		t.Errorf("address tenures overlapped: completions %d and %d", atA, atB)
	}
}

// Tagged out-of-order completion: a memory read issued before an
// intervention read completes after it (tags reorder), and the engine
// counts the reordering.
func TestOutOfOrderCompletion(t *testing.T) {
	calls := 0
	d := New(DefaultConfig(), func(tx *Txn) bool {
		calls++
		return calls == 2 // second transaction gets cache-to-cache supply
	})
	slow := d.Submit(0, Read, 0x100) // memory: 14 cycles
	fast := d.Submit(0, Read, 0x200) // intervention: 4 cycles
	d.RunUntilIdle(1000)
	_, atSlow := slow.Done()
	_, atFast := fast.Done()
	if atFast >= atSlow {
		t.Errorf("expected reordering: fast at %d, slow at %d", atFast, atSlow)
	}
	if d.Stats().OutOfOrderReturns == 0 {
		t.Error("out-of-order return not counted")
	}
}

// The in-order ablation forbids exactly that reordering.
func TestInOrderAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InOrderData = true
	calls := 0
	d := New(cfg, func(tx *Txn) bool {
		calls++
		return calls == 2
	})
	slow := d.Submit(0, Read, 0x100)
	fast := d.Submit(0, Read, 0x200)
	d.RunUntilIdle(1000)
	_, atSlow := slow.Done()
	_, atFast := fast.Done()
	if atFast < atSlow {
		t.Errorf("in-order mode reordered: fast %d before slow %d", atFast, atSlow)
	}
	if d.Stats().OutOfOrderReturns != 0 {
		t.Error("in-order mode counted reorders")
	}
}

// Pipelining: with depth 4, four reads from one master overlap their
// memory latencies; with depth 1 they serialize.
func TestPipelineDepthThroughput(t *testing.T) {
	run := func(depth int) int64 {
		cfg := DefaultConfig()
		cfg.MaxOutstanding = depth
		d := New(cfg, nil)
		for i := 0; i < 8; i++ {
			d.Submit(0, Read, uint64(i*64))
		}
		cycle, ok := d.RunUntilIdle(10000)
		if !ok {
			t.Fatal("did not drain")
		}
		return cycle
	}
	deep, shallow := run(4), run(1)
	if deep >= shallow {
		t.Errorf("depth 4 (%d cycles) not faster than depth 1 (%d)", deep, shallow)
	}
	if float64(shallow)/float64(deep) < 1.5 {
		t.Errorf("pipelining gain only %.2fx", float64(shallow)/float64(deep))
	}
}

// MaxOutstanding is a hard bound on in-flight transactions per master.
func TestOutstandingBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxOutstanding = 2
	d := New(cfg, nil)
	for i := 0; i < 10; i++ {
		d.Submit(0, Read, uint64(i*64))
	}
	for i := 0; i < 500; i++ {
		d.Step()
		if got := d.inflightOf(0); got > 2 {
			t.Fatalf("inflight = %d exceeds bound", got)
		}
	}
}

func TestSubmitBadMasterPanics(t *testing.T) {
	d := New(DefaultConfig(), nil)
	defer func() {
		if recover() == nil {
			t.Error("bad master accepted")
		}
	}()
	d.Submit(9, Read, 0)
}

// Property: any transaction mix drains, completes exactly once each, and
// address tenure count equals the number of submissions.
func TestDrainProperty(t *testing.T) {
	f := func(kinds []uint8) bool {
		if len(kinds) > 64 {
			kinds = kinds[:64]
		}
		d := New(DefaultConfig(), nil)
		var txns []*Txn
		for i, k := range kinds {
			txns = append(txns, d.Submit(i%2, Kind(k%4), uint64(i*64)))
		}
		if _, ok := d.RunUntilIdle(100000); !ok {
			return false
		}
		for _, tx := range txns {
			if done, _ := tx.Done(); !done {
				return false
			}
		}
		s := d.Stats()
		return s.Completed == int64(len(kinds)) && s.AddressTenures == int64(len(kinds))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Cross-validation against the analytic abstraction in internal/bus: at
// saturation, the dispatcher's address-tenure rate equals one tenure per
// AddressCycles — the same capacity the bus.SwitchedFabric's serialized
// snoop resource models.
func TestAddressCapacityMatchesAnalyticModel(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg, nil)
	const n = 400
	for i := 0; i < n; i++ {
		d.Submit(i%2, Upgrade, uint64(i*64))
	}
	cycle, ok := d.RunUntilIdle(100000)
	if !ok {
		t.Fatal("did not drain")
	}
	perTenure := float64(cycle) / n
	if perTenure < float64(cfg.AddressCycles)*0.95 || perTenure > float64(cfg.AddressCycles)*1.25 {
		t.Errorf("address capacity = %.2f cycles/tenure, analytic model uses %d", perTenure, cfg.AddressCycles)
	}
}
