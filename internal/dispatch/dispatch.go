// Package dispatch is a cycle-stepped reference model of the PowerMANNA
// dispatcher — the central control unit of Figures 2 and 3 that "handles
// the protocol and control complexity of the MPC620 processors" and is
// "the subject of a patent application". It implements the MPC620 bus
// protocol features the paper enumerates in Section 2:
//
//   - pipelined, split address and data tenures,
//   - tagged, out-of-order data-transfer completion,
//   - a bounded number of outstanding transactions per master,
//   - sequentialized address/snoop phases (the snoop protocol's
//     requirement, and the node's eventual scaling limit),
//   - queued outstanding snoop requests,
//   - intervention: a cache owning a line Modified supplies the data
//     (cache-to-cache) instead of memory.
//
// The node-level timing models in internal/bus use an analytic
// abstraction of the same machine (busy timelines); this package is the
// detailed protocol engine the abstraction is cross-validated against in
// the tests, and the substrate for the dispatcher ablations (pipelining
// depth, in-order versus out-of-order completion).
package dispatch

import (
	"fmt"

	"powermanna/internal/metrics"
	"powermanna/internal/sim"
	"powermanna/internal/trace"
)

// Metric names PublishMetrics feeds; pmfault --metrics dumps them.
const (
	// MetricAddrOccupancyBP is the serialized address/snoop path's tenure
	// occupancy in basis points (10000 = the path never idle): the
	// dispatcher's scaling limit from Section 2, as a gauge.
	MetricAddrOccupancyBP = "dispatch.addr-tenure.occupancy-bp"
	// MetricDataOccupancyBP is the mean per-master data-path tenure
	// occupancy in basis points (the ADSP switch gives each master its
	// own point-to-point data path).
	MetricDataOccupancyBP = "dispatch.data-tenure.occupancy-bp"
	// MetricCompleted counts transactions the dispatcher completed.
	MetricCompleted = "dispatch.txns.completed"
)

// Kind is a bus transaction type.
type Kind uint8

// Transaction kinds of the MPC620 bus protocol subset the node uses.
const (
	Read      Kind = iota // coherent read (BusRd)
	ReadExcl              // read with intent to modify (BusRdX)
	Upgrade               // invalidating address-only transaction
	Writeback             // dirty-line castout
)

// String names the dispatcher transaction kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "Read"
	case ReadExcl:
		return "ReadExcl"
	case Upgrade:
		return "Upgrade"
	case Writeback:
		return "Writeback"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// addressOnly reports whether the kind has no data tenure.
func (k Kind) addressOnly() bool { return k == Upgrade }

// Config describes the dispatcher build.
type Config struct {
	// Masters is the number of bus masters (CPUs, NI).
	Masters int
	// MaxOutstanding is the per-master transaction pipeline depth the
	// dispatcher tracks (tagged transactions in flight).
	MaxOutstanding int
	// AddressCycles is the length of one address/snoop tenure.
	AddressCycles int
	// SnoopLagCycles is the gap between the address tenure and the
	// snoop response (queued snoops may overlap following tenures).
	SnoopLagCycles int
	// MemoryCycles is the bus-cycle count from snoop response to memory
	// data being ready.
	MemoryCycles int
	// InterventionCycles is the same for a cache-to-cache supply.
	InterventionCycles int
	// DataCycles is the data tenure length (line beats).
	DataCycles int
	// InOrderData forces each master's data tenures to complete in the
	// order its transactions were issued (the ablation's baseline; the
	// MPC620 supports out-of-order completion via tags).
	InOrderData bool
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Masters <= 0:
		return fmt.Errorf("dispatch: Masters = %d", c.Masters)
	case c.MaxOutstanding <= 0:
		return fmt.Errorf("dispatch: MaxOutstanding = %d", c.MaxOutstanding)
	case c.AddressCycles <= 0 || c.DataCycles <= 0:
		return fmt.Errorf("dispatch: tenure lengths must be positive")
	case c.SnoopLagCycles < 0 || c.MemoryCycles < 0 || c.InterventionCycles < 0:
		return fmt.Errorf("dispatch: negative latencies")
	}
	return nil
}

// DefaultConfig returns the PowerMANNA node's dispatcher parameters at
// the 60 MHz bus clock.
func DefaultConfig() Config {
	return Config{
		Masters:            2,
		MaxOutstanding:     4, // calibrated: MPC620 pipelined bus depth
		AddressCycles:      2,
		SnoopLagCycles:     2,
		MemoryCycles:       14, // ≈ 230 ns at 60 MHz
		InterventionCycles: 4,
		DataCycles:         4, // 64-byte line over the 128-bit path
		InOrderData:        false,
	}
}

// phase of a transaction's lifetime.
type phase uint8

const (
	phaseQueued phase = iota
	phaseAddress
	phaseSnoopWait
	phaseDataWait
	phaseData
	phaseDone
)

// Txn is one tagged bus transaction.
type Txn struct {
	Tag      int
	Master   int
	Kind     Kind
	LineAddr uint64
	// Intervention marks that a peer cache owns the line Modified and
	// will supply the data (set by the snoop callback).
	Intervention bool

	phase     phaseState
	issued    int64 // cycle the master presented it
	addrDone  int64
	dataReady int64
	done      int64
}

type phaseState struct {
	p     phase
	until int64
}

// Done reports whether the transaction completed, and when.
func (t *Txn) Done() (bool, int64) { return t.phase.p == phaseDone, t.done }

// AddressDone reports when the address/snoop tenure finished (0 if not
// yet).
func (t *Txn) AddressDone() int64 { return t.addrDone }

// SnoopFunc lets the environment answer the snoop for a transaction:
// it returns whether a peer cache will intervene (supply Modified data).
type SnoopFunc func(t *Txn) bool

// Dispatcher is the cycle-stepped engine.
type Dispatcher struct {
	cfg   Config
	snoop SnoopFunc

	cycle    int64
	nextTag  int
	inflight []*Txn
	queued   [][]*Txn // per master, waiting for a pipeline slot

	addrBusyUntil int64 // serialized address/snoop tenures
	memBusyUntil  int64 // memory datapath occupancy
	// data paths are point-to-point per master (the ADSP switch), so
	// each master has its own data-tenure timeline.
	dataBusyUntil []int64

	stats Stats

	// rec, when non-nil, records address and data tenures as trace spans;
	// cyclePeriod converts bus cycles to simulated time for the recorder.
	rec         *trace.Recorder
	cyclePeriod sim.Time
}

// Stats counts protocol activity.
type Stats struct {
	Issued, Completed   int64
	AddressTenures      int64
	DataTenures         int64
	Interventions       int64
	OutOfOrderReturns   int64
	MaxObservedInflight int
}

// New builds a dispatcher. snoop may be nil (no intervention).
func New(cfg Config, snoop SnoopFunc) *Dispatcher {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if snoop == nil {
		snoop = func(*Txn) bool { return false }
	}
	return &Dispatcher{
		cfg:           cfg,
		snoop:         snoop,
		queued:        make([][]*Txn, cfg.Masters),
		dataBusyUntil: make([]int64, cfg.Masters),
	}
}

// Cycle reports the current bus cycle.
func (d *Dispatcher) Cycle() int64 { return d.cycle }

// Trace attaches a recorder; cyclePeriod is the bus-cycle length used to
// place tenures on the simulated timeline (e.g. the 60 MHz bus clock's
// period). A nil recorder detaches.
func (d *Dispatcher) Trace(rec *trace.Recorder, cyclePeriod sim.Time) {
	d.rec, d.cyclePeriod = rec, cyclePeriod
}

// traceSpan records a tenure span on a dispatcher track, converting
// cycles to simulated time.
func (d *Dispatcher) traceSpan(unit int, name string, from, until int64) {
	if !d.rec.Enabled() || d.cyclePeriod <= 0 {
		return
	}
	d.rec.Span(trace.DispatchTrack(unit), "dispatch", name,
		sim.Time(from)*d.cyclePeriod, sim.Time(until)*d.cyclePeriod)
}

// Stats returns accumulated counters.
func (d *Dispatcher) Stats() Stats { return d.stats }

// PublishMetrics writes the dispatcher's tenure-occupancy gauges and
// completion counter into the registry: address-path occupancy (the
// sequentialized snoop path that bounds node scaling) and mean data-path
// occupancy across the masters' point-to-point paths, both in basis
// points of the elapsed cycles. No-op on a nil registry or before the
// first cycle.
func (d *Dispatcher) PublishMetrics(m *metrics.Registry) {
	if m == nil || d.cycle == 0 {
		return
	}
	const basisPoints = 10000
	addr := d.stats.AddressTenures * int64(d.cfg.AddressCycles) * basisPoints / d.cycle
	data := d.stats.DataTenures * int64(d.cfg.DataCycles) * basisPoints / (d.cycle * int64(d.cfg.Masters))
	m.Gauge(MetricAddrOccupancyBP).Set(addr)
	m.Gauge(MetricDataOccupancyBP).Set(data)
	m.Counter(MetricCompleted).Add(d.stats.Completed)
}

// Submit presents a transaction from a master. It is queued until the
// master has a free pipeline slot. Returns the transaction handle.
func (d *Dispatcher) Submit(master int, kind Kind, lineAddr uint64) *Txn {
	if master < 0 || master >= d.cfg.Masters {
		panic(fmt.Sprintf("dispatch: master %d out of range", master))
	}
	d.nextTag++
	t := &Txn{Tag: d.nextTag, Master: master, Kind: kind, LineAddr: lineAddr, issued: d.cycle}
	t.phase.p = phaseQueued
	d.queued[master] = append(d.queued[master], t)
	d.stats.Issued++
	return t
}

// inflightOf counts a master's transactions holding pipeline slots.
func (d *Dispatcher) inflightOf(master int) int {
	n := 0
	for _, t := range d.inflight {
		if t.Master == master {
			n++
		}
	}
	return n
}

// Step advances one bus cycle, moving every transaction through its
// phases. Deterministic: masters are scanned round-robin starting from
// (cycle mod Masters) for address arbitration fairness.
func (d *Dispatcher) Step() {
	c := d.cycle

	// 1. Promote queued transactions into free pipeline slots.
	for m := 0; m < d.cfg.Masters; m++ {
		for len(d.queued[m]) > 0 && d.inflightOf(m) < d.cfg.MaxOutstanding {
			t := d.queued[m][0]
			d.queued[m] = d.queued[m][1:]
			t.phase = phaseState{p: phaseAddress}
			d.inflight = append(d.inflight, t)
		}
	}
	if n := len(d.inflight); n > d.stats.MaxObservedInflight {
		d.stats.MaxObservedInflight = n
	}

	// 2. Address arbitration: one tenure on the serialized address path.
	if c >= d.addrBusyUntil {
		if t := d.pickAddressCandidate(c); t != nil {
			d.addrBusyUntil = c + int64(d.cfg.AddressCycles)
			t.phase = phaseState{p: phaseSnoopWait, until: d.addrBusyUntil + int64(d.cfg.SnoopLagCycles)}
			d.stats.AddressTenures++
			d.traceSpan(0, "addr "+t.Kind.String(), c, d.addrBusyUntil)
		}
	}

	// 3. Snoop responses and data scheduling.
	for _, t := range d.inflight {
		switch t.phase.p {
		case phaseSnoopWait:
			if c < t.phase.until {
				continue
			}
			t.addrDone = c
			t.Intervention = d.snoop(t)
			if t.Intervention {
				d.stats.Interventions++
				if d.rec.Enabled() && d.cyclePeriod > 0 {
					d.rec.Instant(trace.DispatchTrack(0), "dispatch", "intervention", sim.Time(c)*d.cyclePeriod)
				}
			}
			if t.Kind.addressOnly() {
				t.phase = phaseState{p: phaseDone}
				t.done = c
				d.stats.Completed++
				continue
			}
			lat := int64(d.cfg.MemoryCycles)
			if t.Intervention {
				lat = int64(d.cfg.InterventionCycles)
			}
			if t.Kind == Writeback {
				// Castout data is ready immediately; memory absorbs it.
				lat = 0
			}
			if t.Kind == Read || t.Kind == ReadExcl {
				if !t.Intervention {
					// Memory service occupies the memory datapath.
					start := max64(c, d.memBusyUntil)
					d.memBusyUntil = start + int64(d.cfg.DataCycles)
					t.dataReady = start + lat
				} else {
					t.dataReady = c + lat
				}
			} else {
				t.dataReady = c + lat
			}
			t.phase = phaseState{p: phaseDataWait}

		case phaseDataWait:
			if c < t.dataReady {
				continue
			}
			if d.cfg.InOrderData && d.hasOlderIncomplete(t) {
				continue // the ablation baseline: no tagged reordering
			}
			// Data tenure on the master's point-to-point path.
			if c < d.dataBusyUntil[t.Master] {
				continue
			}
			d.dataBusyUntil[t.Master] = c + int64(d.cfg.DataCycles)
			t.phase = phaseState{p: phaseData, until: d.dataBusyUntil[t.Master]}
			d.stats.DataTenures++
			d.traceSpan(1+t.Master, "data "+t.Kind.String(), c, d.dataBusyUntil[t.Master])

		case phaseData:
			if c < t.phase.until {
				continue
			}
			t.phase = phaseState{p: phaseDone}
			t.done = c
			d.stats.Completed++
			if d.completedOutOfOrder(t) {
				d.stats.OutOfOrderReturns++
			}
		}
	}

	// 4. Retire done transactions from the pipeline.
	keep := d.inflight[:0]
	for _, t := range d.inflight {
		if t.phase.p != phaseDone {
			keep = append(keep, t)
		}
	}
	d.inflight = keep

	d.cycle++
}

// pickAddressCandidate selects the next transaction needing an address
// tenure, round-robin over masters for fairness.
func (d *Dispatcher) pickAddressCandidate(c int64) *Txn {
	for off := 0; off < d.cfg.Masters; off++ {
		m := (int(c) + off) % d.cfg.Masters
		for _, t := range d.inflight {
			if t.Master == m && t.phase.p == phaseAddress {
				return t
			}
		}
	}
	return nil
}

// hasOlderIncomplete reports whether the master has an older transaction
// that has not completed (for the in-order ablation).
func (d *Dispatcher) hasOlderIncomplete(t *Txn) bool {
	for _, o := range d.inflight {
		if o.Master == t.Master && o.Tag < t.Tag && o.phase.p != phaseDone {
			return true
		}
	}
	return false
}

// completedOutOfOrder reports whether any older same-master transaction
// is still incomplete at t's completion.
func (d *Dispatcher) completedOutOfOrder(t *Txn) bool {
	for _, o := range d.inflight {
		if o.Master == t.Master && o.Tag < t.Tag && o.phase.p != phaseDone {
			return true
		}
	}
	return false
}

// RunUntilIdle steps until every submitted transaction completed or the
// cycle budget is exhausted; it returns the final cycle and whether the
// engine drained.
func (d *Dispatcher) RunUntilIdle(maxCycles int64) (int64, bool) {
	for i := int64(0); i < maxCycles; i++ {
		if d.idle() {
			return d.cycle, true
		}
		d.Step()
	}
	return d.cycle, d.idle()
}

func (d *Dispatcher) idle() bool {
	if len(d.inflight) > 0 {
		return false
	}
	for _, q := range d.queued {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
