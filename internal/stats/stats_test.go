package stats

import (
	"strings"
	"testing"
)

func TestSeriesAddMax(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 30)
	s.Add(3, 20)
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Max() != 30 {
		t.Errorf("Max = %g", s.Max())
	}
	if (&Series{}).Max() != 0 {
		t.Error("empty Max != 0")
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{Title: "Fig X", XLabel: "N", YLabel: "MFLOPS"}
	a := Series{Name: "pm"}
	a.Add(100, 120)
	a.Add(200, 110)
	b := Series{Name: "pc"}
	b.Add(100, 90)
	f.Add(a)
	f.Add(b)
	out := f.Render()
	for _, want := range []string{"Fig X", "pm", "pc", "100", "120", "MFLOPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// b has no point at x=200: a dash appears.
	if !strings.Contains(out, "-") {
		t.Error("missing-value dash absent")
	}
}

func TestFigurePlot(t *testing.T) {
	f := Figure{Title: "curve", LogX: true}
	s := Series{Name: "pm"}
	for x := 1.0; x <= 1024; x *= 2 {
		s.Add(x, x*x)
	}
	f.Add(s)
	out := f.Plot(40, 10)
	if !strings.Contains(out, "A = pm") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "A") {
		t.Error("no marks plotted")
	}
	// Degenerate figure.
	empty := Figure{Title: "none"}
	if !strings.Contains(empty.Plot(40, 10), "no plottable data") {
		t.Error("empty plot not handled")
	}
}

func TestSortFloats(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	sortFloats(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("not sorted: %v", xs)
		}
	}
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234:    "1.234k",
		2.5e6:   "2.5M",
		0.00123: "0.00123",
		42:      "42",
	}
	for in, want := range cases {
		if got := formatNum(in); got != want {
			t.Errorf("formatNum(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "Table 1", Columns: []string{"System", "Clock"}}
	tb.AddRow("PowerMANNA", "180 MHz")
	tb.AddRow("SUN", "168 MHz")
	out := tb.Render()
	for _, want := range []string{"Table 1", "System", "PowerMANNA", "168 MHz", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
