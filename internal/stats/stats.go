// Package stats holds the small result-reporting toolkit the experiment
// harness uses: named series, figures grouping several series over a
// shared axis, fixed-width table rendering, and an ASCII plot for quick
// shape inspection in a terminal.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Point is one sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Max returns the maximum Y value (0 for an empty series).
func (s *Series) Max() float64 {
	max := 0.0
	for _, p := range s.Points {
		if p.Y > max {
			max = p.Y
		}
	}
	return max
}

// Figure groups series over a shared X axis, mirroring one figure of the
// paper.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []Series
}

// Add appends a series.
func (f *Figure) Add(s Series) { f.Series = append(f.Series, s) }

// Render produces a column table: X, then one column per series. Series
// may have different X grids; rows are the union of X values.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)

	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sortFloats(sorted)

	fmt.Fprintf(&b, "%16s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%16s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range sorted {
		fmt.Fprintf(&b, "%16s", formatNum(x))
		for _, s := range f.Series {
			y, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&b, "%16s", formatNum(y))
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	if f.YLabel != "" {
		fmt.Fprintf(&b, "(y: %s)\n", f.YLabel)
	}
	return b.String()
}

// Plot renders an ASCII chart of the figure (width×height characters of
// plot area), one letter per series.
func (f *Figure) Plot(width, height int) string {
	if width < 8 || height < 4 {
		width, height = 64, 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			x, y := f.txX(p.X), f.txY(p.Y)
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX >= maxX || minY > maxY {
		return "(no plottable data)\n"
	}
	if minY == maxY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "ABCDEFGHIJ"
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for _, p := range s.Points {
			x, y := f.txX(p.X), f.txY(p.Y)
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			cx := int((x - minX) / (maxX - minX) * float64(width-1))
			cy := int((y - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-cy][cx] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s --\n", f.Title)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	for i, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[i%len(marks)], s.Name)
	}
	return b.String()
}

func (f *Figure) txX(x float64) float64 {
	if f.LogX {
		return math.Log10(x)
	}
	return x
}

func (f *Figure) txY(y float64) float64 {
	if f.LogY {
		return math.Log10(y)
	}
	return y
}

func lookup(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

func sortFloats(xs []float64) {
	// Insertion sort: figures have tens of points.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// formatNum renders a number compactly (engineering-ish).
func formatNum(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 1e9:
		return fmt.Sprintf("%.3g", v)
	case a >= 1e6:
		return fmt.Sprintf("%.4gM", v/1e6)
	case a >= 1000:
		return fmt.Sprintf("%.4gk", v/1e3)
	case a >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Counter is one named count in a CounterSet.
type Counter struct {
	Name  string
	Value int64
}

// CounterSet is an ordered list of named integer counters — the reporting
// shape for degraded-mode statistics (per-plane delivery, failover and
// fault-detection counts). Insertion order is the render order, so output
// is deterministic by construction; never populate one from a map range.
type CounterSet struct {
	Title    string
	Counters []Counter
}

// Add appends a counter.
func (c *CounterSet) Add(name string, v int64) {
	c.Counters = append(c.Counters, Counter{Name: name, Value: v})
}

// Get returns the first counter with the given name (0 if absent).
func (c *CounterSet) Get(name string) int64 {
	for _, ct := range c.Counters {
		if ct.Name == name {
			return ct.Value
		}
	}
	return 0
}

// Render produces aligned "name  value" lines under the title.
func (c *CounterSet) Render() string {
	w := 0
	for _, ct := range c.Counters {
		if len(ct.Name) > w {
			w = len(ct.Name)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "-- %s --\n", c.Title)
	}
	for _, ct := range c.Counters {
		fmt.Fprintf(&b, "%-*s  %d\n", w, ct.Name, ct.Value)
	}
	return b.String()
}

// Table is a titled fixed-width table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render produces aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
