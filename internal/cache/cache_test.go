package cache

import (
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{Name: "T", SizeBytes: 1024, LineBytes: 64, Assoc: 2, HitCycles: 1}
}

func TestConfigValidate(t *testing.T) {
	if err := smallConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 48, Assoc: 1},       // line not pow2
		{SizeBytes: 1000, LineBytes: 64, Assoc: 2},       // not divisible
		{SizeBytes: 64 * 3 * 2, LineBytes: 64, Assoc: 2}, // 3 sets
		{SizeBytes: 1024, LineBytes: 64, Assoc: 2, HitCycles: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if got := smallConfig().Sets(); got != 8 {
		t.Errorf("Sets() = %d, want 8", got)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Error("State.String wrong")
	}
	if Invalid.Valid() || !Modified.Valid() {
		t.Error("State.Valid wrong")
	}
}

func TestReadMissFillHit(t *testing.T) {
	c := New(smallConfig())
	if out := c.Access(0x1000, false); out != Miss {
		t.Fatalf("cold read = %v, want miss", out)
	}
	c.Fill(0x1000, Exclusive)
	if out := c.Access(0x1000, false); out != Hit {
		t.Fatalf("warm read = %v, want hit", out)
	}
	// Same line, different offset: still a hit.
	if out := c.Access(0x103F, false); out != Hit {
		t.Fatalf("same-line read = %v, want hit", out)
	}
	// Next line: miss.
	if out := c.Access(0x1040, false); out != Miss {
		t.Fatalf("next-line read = %v, want miss", out)
	}
	s := c.Stats()
	if s.Reads != 4 || s.ReadMisses != 2 {
		t.Errorf("stats = %+v, want 4 reads 2 misses", s)
	}
	if hr := s.HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %g, want 0.5", hr)
	}
}

func TestWriteUpgradePath(t *testing.T) {
	c := New(smallConfig())
	// Write to Exclusive upgrades silently.
	c.Fill(0x2000, Exclusive)
	if out := c.Access(0x2000, true); out != Hit {
		t.Fatalf("write to E = %v, want hit", out)
	}
	if st := c.Lookup(0x2000); st != Modified {
		t.Fatalf("state after write to E = %v, want M", st)
	}
	// Write to Shared needs a bus upgrade.
	c.Fill(0x3000, Shared)
	if out := c.Access(0x3000, true); out != HitNeedsUpgrade {
		t.Fatalf("write to S = %v, want hit-upgrade", out)
	}
	c.CompleteUpgrade(0x3000)
	if st := c.Lookup(0x3000); st != Modified {
		t.Fatalf("state after upgrade = %v, want M", st)
	}
	if c.Stats().Upgrades != 1 {
		t.Errorf("Upgrades = %d, want 1", c.Stats().Upgrades)
	}
}

func TestCompleteUpgradeAbsentPanics(t *testing.T) {
	c := New(smallConfig())
	defer func() {
		if recover() == nil {
			t.Error("CompleteUpgrade on absent line did not panic")
		}
	}()
	c.CompleteUpgrade(0x4000)
}

func TestFillInvalidStatePanics(t *testing.T) {
	c := New(smallConfig())
	defer func() {
		if recover() == nil {
			t.Error("Fill(Invalid) did not panic")
		}
	}()
	c.Fill(0, Invalid)
}

func TestLRUEviction(t *testing.T) {
	c := New(smallConfig()) // 8 sets, 2-way, 64B lines: set = lineAddr % 8
	// Three lines mapping to set 0: line addrs 0, 8, 16 → byte 0, 512, 1024.
	c.Fill(0, Exclusive)
	c.Fill(512, Exclusive)
	c.Access(0, false) // touch line 0: line 512 is now LRU
	v := c.Fill(1024, Exclusive)
	if !v.Valid || v.LineAddr != 512/64 {
		t.Fatalf("victim = %+v, want line %d", v, 512/64)
	}
	if c.Lookup(0) == Invalid || c.Lookup(1024) == Invalid {
		t.Error("kept lines lost")
	}
	if c.Lookup(512) != Invalid {
		t.Error("victim still present")
	}
}

func TestDirtyEvictionIsWriteback(t *testing.T) {
	c := New(smallConfig())
	c.Fill(0, Modified)
	c.Fill(512, Exclusive)
	c.Access(512, false)
	v := c.Fill(1024, Exclusive) // evicts line 0 (LRU), which is dirty
	if !v.Valid || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty", v)
	}
	s := c.Stats()
	if s.Writebacks != 1 || s.Evictions != 1 {
		t.Errorf("stats = %+v, want 1 writeback, 1 eviction", s)
	}
}

func TestFillPresentLineUpdatesState(t *testing.T) {
	c := New(smallConfig())
	c.Fill(0, Shared)
	v := c.Fill(0, Modified)
	if v.Valid {
		t.Errorf("refill produced victim %+v", v)
	}
	if st := c.Lookup(0); st != Modified {
		t.Errorf("state = %v, want M", st)
	}
}

func TestSnoopRead(t *testing.T) {
	c := New(smallConfig())
	c.Fill(0x100, Modified)
	res := c.Snoop(0x100, false)
	if !res.Had || !res.Supplied {
		t.Fatalf("snoop read of M = %+v, want had+supplied", res)
	}
	if st := c.Lookup(0x100); st != Shared {
		t.Fatalf("state after snoop read = %v, want S", st)
	}
	// Snooping an Exclusive line degrades without supplying.
	c.Fill(0x200, Exclusive)
	res = c.Snoop(0x200, false)
	if !res.Had || res.Supplied {
		t.Fatalf("snoop read of E = %+v, want had only", res)
	}
	if st := c.Lookup(0x200); st != Shared {
		t.Fatalf("state after snoop read of E = %v, want S", st)
	}
	// Absent line: nothing.
	if res := c.Snoop(0x10000, false); res.Had {
		t.Error("snoop of absent line reported Had")
	}
}

func TestSnoopInvalidate(t *testing.T) {
	c := New(smallConfig())
	c.Fill(0x100, Shared)
	res := c.Snoop(0x100, true)
	if !res.Had {
		t.Fatal("snoop inval missed present line")
	}
	if st := c.Lookup(0x100); st != Invalid {
		t.Fatalf("state after snoop inval = %v, want I", st)
	}
	if c.Stats().InvalidationsReceived != 1 {
		t.Error("invalidation not counted")
	}
}

func TestInvalidateAllAndOccupancy(t *testing.T) {
	c := New(smallConfig())
	for i := uint64(0); i < 8; i++ {
		c.Fill(i*64, Exclusive)
	}
	if got := c.Occupancy(); got != 8 {
		t.Errorf("Occupancy = %d, want 8", got)
	}
	c.InvalidateAll()
	if got := c.Occupancy(); got != 0 {
		t.Errorf("Occupancy after InvalidateAll = %d", got)
	}
}

func TestResetStats(t *testing.T) {
	c := New(smallConfig())
	c.Access(0, false)
	c.ResetStats()
	if s := c.Stats(); s.Reads != 0 || s.ReadMisses != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
}

// Property: capacity invariant — occupancy never exceeds the number of
// lines, and a fill always makes its own line present.
func TestFillInvariantProperty(t *testing.T) {
	cfg := Config{Name: "P", SizeBytes: 512, LineBytes: 32, Assoc: 2, HitCycles: 1}
	maxLines := cfg.SizeBytes / cfg.LineBytes
	f := func(addrs []uint16) bool {
		c := New(cfg)
		for _, a := range addrs {
			c.Fill(uint64(a), Exclusive)
			if c.Lookup(uint64(a)) == Invalid {
				return false
			}
			if c.Occupancy() > maxLines {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: an LRU cache of N lines always hits on a working set that
// fits in one set's associativity when accessed round-robin.
func TestAssocWorkingSetProperty(t *testing.T) {
	c := New(smallConfig()) // 2-way
	// Two lines in the same set, accessed alternately, never miss after warmup.
	a1, a2 := uint64(0), uint64(512)
	c.Fill(a1, Exclusive)
	c.Fill(a2, Exclusive)
	for i := 0; i < 100; i++ {
		if c.Access(a1, false) != Hit || c.Access(a2, false) != Hit {
			t.Fatal("working set within associativity missed")
		}
	}
}

// Property: Access never mutates state on a read hit.
func TestReadHitPreservesStateProperty(t *testing.T) {
	f := func(addr uint16, stRaw uint8) bool {
		st := State(stRaw%3) + Shared // S, E or M
		c := New(smallConfig())
		c.Fill(uint64(addr), st)
		c.Access(uint64(addr), false)
		return c.Lookup(uint64(addr)) == st
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
