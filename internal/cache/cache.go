// Package cache models set-associative write-back caches with MESI
// coherence state, as implemented by the PowerPC MPC620 (separate 32 KB
// on-chip instruction and data caches, 64-byte lines, full MESI with
// snooping — Section 2 of the paper) and by the per-processor 2 MB
// second-level caches of the PowerMANNA node.
//
// The package is the state-keeping half of the coherence protocol: it
// tracks tags, MESI states and LRU, and classifies accesses. The protocol's
// bus half — who gets the address phase, where fills come from, when
// cache-to-cache transfers happen — lives with the node fabric models in
// internal/bus and internal/node, because that is a property of the
// machine, not of the cache ASIC.
package cache

import (
	"fmt"
	"math/bits"
)

// State is a MESI coherence state.
type State uint8

// The four MESI states. The zero value is Invalid so fresh lines need no
// initialization.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String renders the MESI state as its single-letter name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether the state holds data.
func (s State) Valid() bool { return s != Invalid }

// Config describes one cache.
type Config struct {
	// Name labels the cache in stats output, e.g. "L1D" or "L2".
	Name string
	// SizeBytes is total capacity. Must be Assoc*LineBytes*powerOfTwo sets.
	SizeBytes int
	// LineBytes is the line length — 64 for the MPC620/PowerMANNA, 32 for
	// the UltraSPARC-I and Pentium II (Table 1). Must be a power of two.
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// HitCycles is the load-use latency of a hit, in cycles of the owning
	// clock domain. The cache itself does no time arithmetic; the CPU and
	// node models convert.
	HitCycles int
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0:
		return fmt.Errorf("cache %q: non-positive geometry %d/%d/%d", c.Name, c.SizeBytes, c.LineBytes, c.Assoc)
	case bits.OnesCount(uint(c.LineBytes)) != 1:
		return fmt.Errorf("cache %q: LineBytes %d not a power of two", c.Name, c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("cache %q: size %d not divisible by assoc*line %d", c.Name, c.SizeBytes, c.LineBytes*c.Assoc)
	case bits.OnesCount(uint(c.SizeBytes/(c.LineBytes*c.Assoc))) != 1:
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, c.SizeBytes/(c.LineBytes*c.Assoc))
	case c.HitCycles < 0:
		return fmt.Errorf("cache %q: negative HitCycles", c.Name)
	}
	return nil
}

// Sets reports the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

type line struct {
	tag     uint64 // line address (addr >> lineShift); valid only if state != Invalid
	state   State
	lastUse uint64
}

// Stats counts cache events. All counters are cumulative since the last
// Reset.
type Stats struct {
	Reads, Writes           int64 // accesses by kind
	ReadMisses, WriteMisses int64
	Upgrades                int64 // write hits on Shared needing bus upgrade
	Writebacks              int64 // dirty evictions
	Evictions               int64 // all evictions of valid lines
	SnoopReads, SnoopInvals int64 // snoops that found the line
	SuppliedCacheToCache    int64 // snooped reads answered from Modified
	InvalidationsReceived   int64 // lines killed by remote writes
}

// HitRate reports combined read+write hit rate; 0 if no accesses.
func (s Stats) HitRate() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return 1 - float64(s.ReadMisses+s.WriteMisses)/float64(total)
}

// Cache is one cache instance.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	assoc     int
	lines     []line // sets*assoc, set-major
	clock     uint64
	stats     Stats
}

// New builds a cache. It panics on invalid configuration.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	return &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
		assoc:     cfg.Assoc,
		lines:     make([]line, sets*cfg.Assoc),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr maps a byte address to its line address (tag granularity).
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

func (c *Cache) set(lineAddr uint64) []line {
	base := int(lineAddr&c.setMask) * c.assoc
	return c.lines[base : base+c.assoc]
}

func find(set []line, tag uint64) *line {
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Outcome classifies an access against the local cache.
type Outcome uint8

const (
	// Hit: the access completed locally.
	Hit Outcome = iota
	// HitNeedsUpgrade: a write hit a Shared line; the caller must win a
	// bus address phase (invalidating other copies) before the line can
	// become Modified. Call CompleteUpgrade afterwards.
	HitNeedsUpgrade
	// Miss: the line is not present; the caller must obtain it (from the
	// next level or a peer cache) and call Fill.
	Miss
)

// String names the lookup outcome for traces and stats.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case HitNeedsUpgrade:
		return "hit-upgrade"
	case Miss:
		return "miss"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Access classifies a read or write of addr and applies the purely local
// state transitions (E→M on write hit, LRU update, counters).
func (c *Cache) Access(addr uint64, write bool) Outcome {
	la := c.LineAddr(addr)
	set := c.set(la)
	c.clock++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	ln := find(set, la)
	if ln == nil {
		if write {
			c.stats.WriteMisses++
		} else {
			c.stats.ReadMisses++
		}
		return Miss
	}
	ln.lastUse = c.clock
	if !write {
		return Hit
	}
	switch ln.state {
	case Modified:
		return Hit
	case Exclusive:
		ln.state = Modified // silent upgrade, no bus traffic
		return Hit
	default: // Shared
		c.stats.Upgrades++
		return HitNeedsUpgrade
	}
}

// CompleteUpgrade marks a Shared line Modified after the caller has won
// the invalidating bus phase. It panics if the line is not present: that
// would mean the protocol lost the line between Access and the bus grant,
// which the node models (atomic bus phases) never allow.
func (c *Cache) CompleteUpgrade(addr uint64) {
	la := c.LineAddr(addr)
	ln := find(c.set(la), la)
	if ln == nil {
		panic(fmt.Sprintf("cache %s: CompleteUpgrade on absent line %#x", c.cfg.Name, la))
	}
	ln.state = Modified
}

// Victim describes an eviction produced by Fill.
type Victim struct {
	LineAddr uint64
	Dirty    bool // Modified: must be written back
	Valid    bool // false when an Invalid way was used
}

// Fill installs the line containing addr with the given state, evicting
// the LRU way if the set is full. The caller decides the fill state from
// the bus transaction (Exclusive for an unshared read fill, Shared when a
// peer holds it, Modified for a write fill).
func (c *Cache) Fill(addr uint64, st State) Victim {
	if st == Invalid {
		panic(fmt.Sprintf("cache %s: Fill with Invalid state", c.cfg.Name))
	}
	la := c.LineAddr(addr)
	set := c.set(la)
	c.clock++
	if ln := find(set, la); ln != nil {
		// Refill of a present line (e.g. upgrade-with-data); just update.
		ln.state = st
		ln.lastUse = c.clock
		return Victim{}
	}
	// Prefer an invalid way; otherwise evict LRU.
	victim := &set[0]
	for i := range set {
		if set[i].state == Invalid {
			victim = &set[i]
			break
		}
		if set[i].lastUse < victim.lastUse {
			victim = &set[i]
		}
	}
	out := Victim{}
	if victim.state != Invalid {
		out = Victim{LineAddr: victim.tag, Dirty: victim.state == Modified, Valid: true}
		c.stats.Evictions++
		if out.Dirty {
			c.stats.Writebacks++
		}
	}
	victim.tag = la
	victim.state = st
	victim.lastUse = c.clock
	return out
}

// Lookup reports the state of the line containing addr without touching
// LRU or counters. Used by snoop logic and tests.
func (c *Cache) Lookup(addr uint64) State {
	la := c.LineAddr(addr)
	if ln := find(c.set(la), la); ln != nil {
		return ln.state
	}
	return Invalid
}

// SnoopResult describes what a snooped cache contributed.
type SnoopResult struct {
	Had      bool // line was present
	Supplied bool // line was Modified: this cache supplies the data
}

// Snoop applies a remote bus transaction to this cache. For a read snoop
// (exclusive=false) a Modified or Exclusive line degrades to Shared and a
// Modified line supplies the data (cache-to-cache transfer, a feature the
// MPC620 bus protocol supports directly). For a write snoop
// (exclusive=true) any copy is invalidated.
func (c *Cache) Snoop(addr uint64, exclusive bool) SnoopResult {
	la := c.LineAddr(addr)
	ln := find(c.set(la), la)
	if ln == nil {
		return SnoopResult{}
	}
	res := SnoopResult{Had: true, Supplied: ln.state == Modified}
	if exclusive {
		ln.state = Invalid
		c.stats.SnoopInvals++
		c.stats.InvalidationsReceived++
	} else {
		if res.Supplied {
			c.stats.SuppliedCacheToCache++
		}
		ln.state = Shared
		c.stats.SnoopReads++
	}
	return res
}

// InvalidateAll clears every line (used between benchmark repetitions to
// model a cold start). Dirty data is discarded; callers that care about
// writeback traffic should drain via Fill pressure instead.
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// ResetStats zeroes the counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Occupancy reports how many lines are currently valid.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			n++
		}
	}
	return n
}
