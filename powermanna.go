// Package powermanna is a deterministic architecture-simulation
// reproduction of "PowerMANNA: A Parallel Architecture Based on the
// PowerPC MPC620" (Behr, Pletner, Sodan — HPCA 2000).
//
// The paper describes a physical distributed-memory parallel computer:
// dual-MPC620 single-board nodes with a switched intra-node datapath (the
// ADSP bus switch driven by a central dispatcher), a duplicated
// crossbar-hierarchy interconnect with a lightweight CPU-driven network
// interface, and an evaluation against a SUN Ultra-I SMP node and a
// Pentium II / Myrinet cluster. This module rebuilds all of that as
// cycle-approximate models in pure Go and regenerates every table and
// figure of the paper's evaluation; see DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-versus-measured results.
//
// This package is the public facade: it re-exports the machine
// configurations, node and network simulators, benchmark kernels and
// experiment harness from the internal packages.
//
// Quick start:
//
//	nd := powermanna.NewNode(powermanna.PowerMANNA())
//	res := powermanna.RunMatMult(nd, 201, powermanna.Transposed, 2)
//	fmt.Println(res) // MFLOPS on both MPC620s
//
//	pm := powermanna.NewPowerMANNAComm()
//	fmt.Println(pm.OneWayLatency(8)) // ~2.75µs, the paper's headline
package powermanna

import (
	"fmt"

	"powermanna/internal/comm"
	"powermanna/internal/dispatch"
	"powermanna/internal/earth"
	"powermanna/internal/experiments"
	"powermanna/internal/heat"
	"powermanna/internal/hint"
	"powermanna/internal/machine"
	"powermanna/internal/matmult"
	"powermanna/internal/mpl"
	"powermanna/internal/netsim"
	"powermanna/internal/nic"
	"powermanna/internal/node"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// Time is simulated time in picoseconds.
type Time = sim.Time

// Node-level simulation types.
type (
	// NodeConfig describes one machine node (processors, caches, TLB,
	// fabric, memory).
	NodeConfig = node.Config
	// Node is an instantiated node simulator.
	Node = node.Node
	// Proc is one processor's handle on a node.
	Proc = node.Proc
)

// Machine configurations of the paper's Table 1.
var (
	// PowerMANNA returns the PowerMANNA node: 2× MPC620 @ 180 MHz, 2 MB
	// L2s with 64-byte lines, ADSP switched fabric, 640 MB/s interleaved
	// memory.
	PowerMANNA = machine.PowerMANNA
	// PowerMANNAWithCPUs scales the node to n processors (the Section 2
	// scalability ablation).
	PowerMANNAWithCPUs = machine.PowerMANNAWithCPUs
	// SunUltra returns the SUN ULTRA-I node: 2× UltraSPARC-I @ 168 MHz.
	SunUltra = machine.SunUltra
	// PentiumII returns the PC-cluster node at 180 or 266 MHz.
	PentiumII = machine.PentiumII
	// AllMachines returns the full Table 1 set.
	AllMachines = machine.All
	// Table1 renders the configuration table.
	Table1 = machine.Table1
)

// NewNode instantiates a node simulator from a configuration.
func NewNode(cfg NodeConfig) *Node { return node.New(cfg) }

// MachineByName resolves a short machine name — "pm"/"powermanna", "sun",
// "pc180", "pc266" — to its Table 1 configuration.
func MachineByName(name string) (NodeConfig, bool) {
	switch name {
	case "pm", "powermanna":
		return machine.PowerMANNA(), true
	case "sun":
		return machine.SunUltra(), true
	case "pc180":
		return machine.PentiumII(180), true
	case "pc266":
		return machine.PentiumII(266), true
	}
	return NodeConfig{}, false
}

// MatMult benchmark (Figures 7 and 8).
type (
	// MatMultVersion selects naive or transposed.
	MatMultVersion = matmult.Version
	// MatMultResult reports one run.
	MatMultResult = matmult.Result
)

// MatMult variants.
const (
	Naive      = matmult.Naive
	Transposed = matmult.Transposed
)

// RunMatMult executes C = A×B of size n on the first cpus processors of
// nd (reset first) and returns timing plus a functional checksum.
func RunMatMult(nd *Node, n int, v MatMultVersion, cpus int) MatMultResult {
	return matmult.Run(nd, n, v, cpus)
}

// HINT benchmark (Figure 6).
type (
	// HintDataType selects DOUBLE or INT arithmetic.
	HintDataType = hint.DataType
	// HintResult carries the QUIPS curve and the integral bounds.
	HintResult = hint.Result
)

// HINT variants.
const (
	HintDouble = hint.Double
	HintInt    = hint.Int
)

// RunHINT executes HINT on processor 0 of nd up to maxIntervals.
func RunHINT(nd *Node, dt HintDataType, maxIntervals int) HintResult {
	return hint.Run(nd, dt, maxIntervals)
}

// Communication system (Figures 9–12).
type (
	// CommSystem is a measurable communication system.
	CommSystem = comm.System
	// PMCommParams are the PowerMANNA driver/interface parameters.
	PMCommParams = comm.PMParams
)

var (
	// NewPowerMANNAComm builds the measured PowerMANNA pair (two nodes of
	// an eight-node cluster through one crossbar).
	NewPowerMANNAComm = comm.NewPowerMANNA
	// NewPowerMANNACommWith builds a pair with explicit parameters (FIFO
	// size and dual-link ablations).
	NewPowerMANNACommWith = comm.NewPowerMANNAWith
	// DefaultPMCommParams returns the calibrated parameter set.
	DefaultPMCommParams = comm.DefaultPMParams
	// BIP and FM return the paper's Myrinet user-space baselines.
	BIP = comm.BIP
	FM  = comm.FM
	// CommSizes returns the power-of-two payload sweep of the figures.
	CommSizes = comm.Sizes
)

// Interconnect topology and network simulation (Figure 5, Section 3).
type (
	// Topology is an assembled crossbar hierarchy.
	Topology = topo.Topology
	// Path is a source-routed connection (route bytes, hops).
	Path = topo.Path
	// Network is a runnable interconnect with wormhole transit timing.
	Network = netsim.Network
)

var (
	// Cluster8 builds the Figure 5a eight-node cabinet.
	Cluster8 = topo.Cluster8
	// System256 builds the Figure 5b 256-processor system.
	System256 = topo.System256
	// NewNetwork instantiates crossbars, wires and NIs over a topology.
	NewNetwork = netsim.New
)

// Network planes of the duplicated communication system.
const (
	NetworkA = topo.NetworkA
	NetworkB = topo.NetworkB
)

// Message-passing layer (the MPI role of Section 4).
type (
	// World is a set of ranks over a simulated interconnect with
	// point-to-point messaging and binomial-tree collectives.
	World = mpl.World
)

var (
	// NewWorld builds a message-passing world, one rank per node.
	NewWorld = mpl.NewWorld
	// CollectiveDepth reports the binomial-tree depth over p ranks.
	CollectiveDepth = mpl.CriticalDepth
)

// EARTH-style fine-grain multithreading (Section 7, reference [18]).
type (
	// EarthSystem is an EARTH machine: fibers, sync slots and
	// split-phase tokens over the simulated interconnect.
	EarthSystem = earth.System
	// EarthParams are the runtime's calibrated cost constants.
	EarthParams = earth.Params
	// EarthCtx is a fiber's handle on the runtime.
	EarthCtx = earth.Ctx
)

var (
	// NewEarth builds an EARTH system over a topology.
	NewEarth = earth.New
	// DefaultEarthParams returns EARTH-MANNA-calibrated constants.
	DefaultEarthParams = earth.DefaultParams
	// RunEarthFib runs the classic EARTH Fibonacci benchmark.
	RunEarthFib = earth.RunFib
)

// SingleNode returns a one-node topology (for baseline comparisons).
func SingleNode() *Topology { return topo.New("single", 1) }

// Heat-equation application (the scientific-computing workload class the
// paper's introduction motivates).
type (
	// HeatConfig describes one heat-equation solve.
	HeatConfig = heat.Config
	// HeatResult reports a parallel solve.
	HeatResult = heat.Result
)

var (
	// HeatDefaultConfig returns a calibrated solver setup.
	HeatDefaultConfig = heat.DefaultConfig
	// RunHeatSerial computes the reference solution.
	RunHeatSerial = heat.RunSerial
	// RunHeat solves across all ranks of a message-passing world.
	RunHeat = heat.Run
)

// Dispatcher protocol engine (Section 2, Figures 2-3) and the PCI-NIC
// comparison path (Sections 3.3, 6).
type (
	// Dispatcher is the cycle-stepped protocol engine of the node's
	// central dispatcher.
	Dispatcher = dispatch.Dispatcher
	// DispatcherConfig describes a dispatcher build.
	DispatcherConfig = dispatch.Config
	// NICConfig is the mechanistic PCI-attached NIC path.
	NICConfig = nic.Config
)

var (
	// NewDispatcher builds a dispatcher protocol engine.
	NewDispatcher = dispatch.New
	// DefaultDispatcherConfig returns the PowerMANNA node's parameters.
	DefaultDispatcherConfig = dispatch.DefaultConfig
	// MyrinetPPro returns the reference NIC-behind-PCI configuration.
	MyrinetPPro = nic.MyrinetPPro
)

// Experiment harness: regenerate the paper's tables and figures.
type (
	// Experiment is one regenerated table or figure.
	Experiment = experiments.Result
	// ExperimentOptions tunes sweep sizes.
	ExperimentOptions = experiments.Options
)

var (
	// ExperimentIDs lists all experiment keys ("table1", "fig6a", ...).
	ExperimentIDs = experiments.IDs
	// AllExperiments runs the complete evaluation.
	AllExperiments = experiments.All
)

// RunExperiment regenerates one table or figure by ID.
func RunExperiment(id string, opt ExperimentOptions) (Experiment, error) {
	fn, ok := experiments.ByID(id)
	if !ok {
		return Experiment{}, fmt.Errorf("powermanna: unknown experiment %q (have %v)", id, experiments.IDs())
	}
	return fn(opt), nil
}
